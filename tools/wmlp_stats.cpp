// Offline reporter over telemetry snapshot files.
//
// Usage:
//   wmlp_stats --snapshot s.json                 summarize one snapshot
//   wmlp_stats --snapshot s.json --prometheus    re-emit Prometheus text
//   wmlp_stats --snapshot b.json --base a.json   diff: b minus a
//   ... [--filter substr]                        restrict to matching names
//                                                (no match => exit nonzero)
//
// The summary prints one row per metric: counters as their value, gauges
// as-is, histograms as count/mean/p50/p99 interpolated from the stored
// buckets (the same linear-within-bucket rule as LatencyHistogram).
// Diff mode subtracts the base snapshot metric-by-metric — counters and
// histogram buckets as unsigned deltas (a counter that went backwards is
// reported as an error, since counters are monotone within a process),
// gauges as signed deltas — and summarizes the difference, which turns two
// snapshots taken around a phase into that phase's own report.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "harness/table.h"
#include "telemetry/export.h"
#include "telemetry/snapshot_reader.h"
#include "tool_util.h"

namespace wmlp {
namespace {

using telemetry::MetricSnapshot;
using telemetry::MetricType;
using telemetry::SnapshotFile;

// Linear-within-bucket quantile over the snapshot's stored buckets. Bucket
// edges: pow2 -> [2^b, 2^{b+1}) with bucket 0 starting at 0; explicit ->
// (prev_bound, bounds[i]] with a final overflow bucket treated as
// [last_bound, 2*last_bound) for interpolation purposes.
double HistQuantile(const MetricSnapshot& m, double q) {
  if (m.hist_count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(m.hist_count);
  double seen = 0.0;
  for (size_t b = 0; b < m.bucket_counts.size(); ++b) {
    const double c = static_cast<double>(m.bucket_counts[b]);
    if (c == 0.0) continue;
    if (seen + c >= target) {
      double lo, hi;
      if (m.pow2) {
        lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
        hi = std::ldexp(1.0, static_cast<int>(b) + 1);
      } else if (b < m.bounds.size()) {
        lo = b == 0 ? 0.0 : m.bounds[b - 1];
        hi = m.bounds[b];
      } else {  // overflow bucket: no upper edge; extrapolate one doubling
        lo = m.bounds.empty() ? 0.0 : m.bounds.back();
        hi = lo > 0.0 ? 2.0 * lo : 1.0;
      }
      const double frac = (target - seen) / c;
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return 0.0;
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

// Returns how many metrics matched the filter (all of them when the
// filter is empty) so the caller can fail on a filter that hit nothing.
size_t Summarize(const std::vector<MetricSnapshot>& metrics,
                 const std::string& filter) {
  Table table({"metric", "type", "value", "p50", "p99"});
  size_t matched = 0;
  for (const MetricSnapshot& m : metrics) {
    if (!filter.empty() && m.name.find(filter) == std::string::npos) {
      continue;
    }
    ++matched;
    switch (m.type) {
      case MetricType::kCounter:
        table.AddRow({m.name, TypeName(m.type),
                      FmtInt(static_cast<int64_t>(m.counter_value)), "-",
                      "-"});
        break;
      case MetricType::kGauge:
        table.AddRow(
            {m.name, TypeName(m.type), Fmt(m.gauge_value, 3), "-", "-"});
        break;
      case MetricType::kHistogram: {
        const double mean =
            m.hist_count == 0
                ? 0.0
                : m.hist_sum / static_cast<double>(m.hist_count);
        table.AddRow({m.name, TypeName(m.type),
                      "n=" + FmtInt(static_cast<int64_t>(m.hist_count)) +
                          " mean=" + Fmt(mean, 2),
                      Fmt(HistQuantile(m, 0.5), 2),
                      Fmt(HistQuantile(m, 0.99), 2)});
        break;
      }
    }
  }
  table.Print(std::cout);
  return matched;
}

// b minus a. Metrics only in `b` pass through unchanged; metrics only in
// `a` are dropped (they recorded nothing during the window).
std::vector<MetricSnapshot> Diff(const std::vector<MetricSnapshot>& base,
                                 const std::vector<MetricSnapshot>& now) {
  std::vector<MetricSnapshot> out;
  for (const MetricSnapshot& b : now) {
    const MetricSnapshot* a = nullptr;
    for (const MetricSnapshot& cand : base) {
      if (cand.name == b.name) {
        a = &cand;
        break;
      }
    }
    MetricSnapshot d = b;
    if (a != nullptr) {
      if (a->type != b.type) {
        tools::Die("metric '" + b.name + "' changed type between snapshots");
      }
      switch (b.type) {
        case MetricType::kCounter:
          if (a->counter_value > b.counter_value) {
            tools::Die("counter '" + b.name +
                       "' went backwards between snapshots");
          }
          d.counter_value = b.counter_value - a->counter_value;
          break;
        case MetricType::kGauge:
          d.gauge_value = b.gauge_value - a->gauge_value;
          break;
        case MetricType::kHistogram: {
          if (a->pow2 != b.pow2 || a->bounds != b.bounds ||
              a->bucket_counts.size() != b.bucket_counts.size()) {
            tools::Die("histogram '" + b.name +
                       "' changed layout between snapshots");
          }
          if (a->hist_count > b.hist_count) {
            tools::Die("histogram '" + b.name +
                       "' count went backwards between snapshots");
          }
          d.hist_count = b.hist_count - a->hist_count;
          d.hist_sum = b.hist_sum - a->hist_sum;
          for (size_t i = 0; i < d.bucket_counts.size(); ++i) {
            if (a->bucket_counts[i] > b.bucket_counts[i]) {
              tools::Die("histogram '" + b.name +
                         "' bucket went backwards between snapshots");
            }
            d.bucket_counts[i] = b.bucket_counts[i] - a->bucket_counts[i];
          }
          break;
        }
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace
}  // namespace wmlp

int main(int argc, char** argv) {
  using namespace wmlp;
  const tools::Flags flags(argc, argv);
  const std::string snapshot_path = flags.GetString("snapshot");
  if (snapshot_path.empty()) tools::Die("--snapshot is required");

  std::string err;
  telemetry::SnapshotFile snapshot;
  if (!telemetry::ReadSnapshotFile(snapshot_path, &snapshot, &err)) {
    tools::Die(err);
  }

  std::vector<telemetry::MetricSnapshot> metrics = snapshot.metrics;
  const std::string base_path = flags.GetString("base");
  if (!base_path.empty()) {
    telemetry::SnapshotFile base;
    if (!telemetry::ReadSnapshotFile(base_path, &base, &err)) {
      tools::Die(err);
    }
    metrics = Diff(base.metrics, metrics);
  }

  if (flags.Has("prometheus")) {
    telemetry::WritePrometheusText(std::cout, metrics);
    return 0;
  }

  std::cout << "snapshot " << snapshot_path << " (schema " << snapshot.schema
            << ", telemetry "
            << (snapshot.telemetry_compiled ? "compiled" : "not compiled")
            << ", uptime " << Fmt(snapshot.uptime_seconds, 3) << " s";
  if (!base_path.empty()) std::cout << ", diffed against " << base_path;
  std::cout << ", " << metrics.size() << " metrics)\n";
  const std::string filter = flags.GetString("filter");
  const size_t matched = Summarize(metrics, filter);
  // A filter that selects nothing is an error, not an empty table: CI
  // greps depend on "--filter wmlp_serve produced rows" meaning the
  // metrics actually exist in the snapshot.
  if (!filter.empty() && matched == 0) {
    tools::Die("no metrics matched --filter '" + filter + "'");
  }
  return 0;
}
