// Run an online policy on a saved, streamed, or imported trace.
//
// Usage:
//   wmlp_run --trace t.wmlp --policy landlord [--seed 1] [--trials 5]
//            [--opt] [--reference-solver] [--batch 256]
//   wmlp_run --trace t.wmlp --policy predictive [--predictor ewma|oracle]
//            [--pred-noise none|lognormal|swap|stale] [--pred-eta 0.5]
//            [--pred-lambda 0.75] [--pred-horizon 0]
//   wmlp_run --trace-stream t.wmlp --policy lru [--chunk 4096] [--latency]
//            [--watchdog] [--watchdog-threshold 8.0]
//   wmlp_run --import accesses.log --k 64 [--dirty 10] [--clean 1] ...
//
// All modes accept --telemetry-out (snapshot JSON), --trace-out (Perfetto
// trace_event JSON), and --stats-interval (periodic Prometheus text on
// stderr); see src/telemetry/export.h.
//
// --trace-stream replays the same format incrementally through the engine's
// StreamingFileSource, holding only O(chunk) requests in memory — use it for
// traces that do not fit in RAM. --latency additionally prints per-request
// serve-time percentiles (cycle counter).
// --import reads a plain key/op log (one "<key> [R|W]" per line; see
// trace/import.h) instead of the wmlp trace format.
// --watchdog (streaming mode only: the in-memory modes run trials
// concurrently, and the observer is single-threaded) attaches the online
// cost-ratio watchdog (engine/cost_watchdog.h) and prints its running
// upper bound on the competitive ratio; --watchdog-threshold R flips the
// health signal (and /healthz, with --http-port) when the ratio crosses R.
// --batch sets the engine's pull-mode batch size (requests served per
// StepBatch slug): a pure throughput knob — all results are bitwise
// invariant to it (engine/engine.h).
// --opt also computes the offline optimum bounds and prints ratios
// (in-memory paths only).
// The --predictor / --pred-* flags configure the predictive combiner
// (docs/ARCHITECTURE.md §14) and require --policy predictive; --predictor
// oracle primes an exact next-request-time oracle from the in-memory trace
// (cloned per trial), so it needs --trace, not --trace-stream. Out-of-range
// values (negative eta or horizon, lambda outside [0, 1], unknown noise
// kind) are rejected before any trace is read.
// Randomized policies are averaged over --trials seeds.
#include <iostream>
#include <optional>

#include "engine/cost_watchdog.h"
#include "engine/engine.h"
#include "engine/step_observers.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "harness/thread_pool.h"
#include "offline/bounds.h"
#include "predict/noise.h"
#include "predict/oracle.h"
#include "predict/predictive_policy.h"
#include "registry/policy_registry.h"
#include "telemetry/health.h"
#include "tool_util.h"
#include "trace/import.h"
#include "trace/trace_io.h"
#include "util/rng.h"

namespace wmlp {
namespace {

// Streams the file through the engine once per trial (the source is
// single-pass, so each trial re-opens the file). Returns per-trial results.
// A fresh watchdog runs per trial (it tracks one request stream); each
// publishes its final totals into the health registry, whose snapshot sums
// the trials.
std::vector<SimResult> RunStreaming(const std::string& path,
                                    const std::string& policy_name,
                                    int32_t trials, uint64_t seed,
                                    int64_t chunk, int64_t batch,
                                    LatencyHistogram* histogram,
                                    bool watchdog,
                                    double watchdog_threshold) {
  std::vector<SimResult> results;
  for (int32_t trial = 0; trial < trials; ++trial) {
    std::string err;
    StreamingFileOptions sopts;
    sopts.chunk_size = chunk;
    auto source = StreamingFileSource::Open(path, &err, sopts);
    if (source == nullptr) tools::Die(err);
    PolicyPtr policy =
        MakePolicyByName(policy_name,
                         DeriveSeed(seed, static_cast<uint64_t>(trial)));
    EngineOptions eopts;
    eopts.batch = batch;
    MultiObserver multi;
    std::optional<CostRatioWatchdog> dog;
    if (histogram != nullptr) {
      histogram->Start();
      multi.Add(histogram);
    }
    if (watchdog) {
      WatchdogOptions wopts;
      wopts.threshold = watchdog_threshold;
      if (trials > 1) wopts.label = "trial" + std::to_string(trial);
      dog.emplace(source->instance(), wopts);
      multi.Add(&*dog);
    }
    if (histogram != nullptr || watchdog) eopts.observer = &multi;
    Engine engine(*source, *policy, eopts);
    results.push_back(engine.Run());
    if (dog.has_value()) dog->Publish();
  }
  return results;
}

}  // namespace
}  // namespace wmlp

int main(int argc, char** argv) {
  using namespace wmlp;
  const tools::Flags flags(argc, argv);
  const std::string path = flags.GetString("trace");
  const std::string stream_path = flags.GetString("trace-stream");
  const std::string import_path = flags.GetString("import");
  std::string policy_name = flags.GetString("policy", "lru");
  // The fractional stack defaults to the output-sensitive solver;
  // --reference-solver opts back into the O(n * ell)-per-step oracle.
  if (flags.Has("reference-solver")) {
    if (policy_name == "randomized" || policy_name == "fractional-rounded") {
      policy_name = "fractional-rounded-reference";
    } else if (policy_name.rfind("randomized:", 0) == 0) {
      policy_name += ",engine=reference";
    } else {
      tools::Die("--reference-solver only applies to the randomized /"
                 " fractional-rounded policies");
    }
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int32_t trials =
      static_cast<int32_t>(flags.GetIntInRange("trials", 1, 1, 1000000));
  // Same ceiling as the serve config surface (server.h kMaxBatch): far
  // above any sensible value, low enough that a typo cannot ask for an
  // effectively unbounded scratch buffer.
  const int64_t batch =
      flags.GetIntInRange("batch", 256, 1, int64_t{1} << 22);
  if (path.empty() && import_path.empty() && stream_path.empty()) {
    tools::Die("--trace, --trace-stream, or --import is required");
  }

  // Predictive-combiner flags (strictly validated before any trace I/O:
  // the range getters refuse negative eta/horizon and lambda outside
  // [0, 1] rather than clamping).
  const bool has_pred_flags =
      flags.Has("predictor") || flags.Has("pred-noise") ||
      flags.Has("pred-eta") || flags.Has("pred-lambda") ||
      flags.Has("pred-horizon");
  const std::string predictor_kind = flags.GetString("predictor", "ewma");
  predict::PredictiveOptions popts;
  if (has_pred_flags) {
    if (policy_name != "predictive") {
      tools::Die("--predictor / --pred-* flags require --policy predictive"
                 " (for parameterized forms use predictive:k=v,...)");
    }
    if (predictor_kind != "ewma" && predictor_kind != "oracle") {
      tools::Die("--predictor must be 'ewma' or 'oracle', got '" +
                 predictor_kind + "'");
    }
    popts.lambda = flags.GetDoubleInRange("pred-lambda", 0.75, 0.0, 1.0);
    popts.horizon =
        flags.GetIntInRange("pred-horizon", 0, 0, int64_t{1} << 40);
    popts.eta = flags.GetDoubleInRange("pred-eta", 0.0, 0.0, 1e15);
    const std::string noise_name = flags.GetString("pred-noise", "none");
    if (!predict::ParseNoiseKind(noise_name, &popts.noise)) {
      tools::Die("--pred-noise must be none, lognormal, swap, or stale;"
                 " got '" + noise_name + "'");
    }
    std::string perr;
    if (predict::MakePredictivePolicy(seed, popts, nullptr, &perr) ==
        nullptr) {
      tools::Die(perr);
    }
  }

  // Validate the policy name once.
  if (MakePolicyByName(policy_name, seed) == nullptr) {
    std::string names;
    for (const auto& n : KnownPolicyNames()) names += " " + n;
    tools::Die("unknown policy '" + policy_name + "'; known:" + names);
  }

  const telemetry::TelemetryRunOptions topts =
      tools::ParseTelemetryFlags(flags);
  telemetry::TelemetrySession telemetry_session(topts);
  tools::DieOnSessionStartError(telemetry_session);

  const bool watchdog = flags.Has("watchdog");
  const double watchdog_threshold =
      flags.GetDoubleInRange("watchdog-threshold", 0.0, 0.0, 1e12);
  if ((watchdog || flags.Has("watchdog-threshold")) && stream_path.empty()) {
    tools::Die("--watchdog runs on the single-threaded streaming path;"
               " use --trace-stream");
  }
  if (watchdog_threshold > 0.0 && !watchdog) {
    tools::Die("--watchdog-threshold requires --watchdog");
  }

  if (!stream_path.empty()) {
    if (flags.Has("opt")) {
      tools::Die("--opt needs the whole trace in memory; use --trace");
    }
    if (has_pred_flags) {
      tools::Die("--predictor / --pred-* need the whole trace in memory;"
                 " use --trace");
    }
    LatencyHistogram histogram;
    const auto results = RunStreaming(
        stream_path, policy_name, trials, seed,
        flags.GetIntInRange("chunk", 4096, 1, int64_t{1} << 22),
        batch, flags.Has("latency") ? &histogram : nullptr,
        watchdog, watchdog_threshold);
    RunningStat cost, hits;
    int64_t evictions = 0, length = 0;
    for (const auto& r : results) {
      cost.Add(r.eviction_cost);
      hits.Add(r.hit_rate());
      evictions += r.evictions;
      length = r.hits + r.misses;
    }
    std::cout << "policy " << policy_name << " on " << stream_path
              << " (streamed, " << length << " requests)\n";
    std::cout << "  eviction cost: " << Fmt(cost.mean(), 2);
    if (trials > 1) {
      std::cout << " +- " << Fmt(cost.ci95_halfwidth(), 2) << " (" << trials
                << " trials)";
    }
    std::cout << "\n  hit rate:      " << Fmt(hits.mean(), 4) << "\n";
    std::cout << "  evictions:     " << evictions / trials << "\n";
    if (histogram.count() > 0) {
      std::cout << "  serve latency (cycles): p50="
                << Fmt(histogram.Quantile(0.5), 0)
                << " p90=" << Fmt(histogram.Quantile(0.9), 0)
                << " p99=" << Fmt(histogram.Quantile(0.99), 0)
                << " max=" << histogram.max_cycles() << "\n";
    }
    if (watchdog) {
      const health::HealthSnapshot snap =
          health::CostRatioHealth::Get().Snapshot();
      std::cout << "  watchdog:      cost_ratio_upper="
                << (snap.lower_bound > 0.0 ? Fmt(snap.ratio_upper, 3)
                                           : std::string("n/a"))
                << " (lower bound " << Fmt(snap.lower_bound, 2) << ", "
                << (snap.healthy ? "healthy" : "UNHEALTHY") << ")\n";
    }
    std::string terr;
    if (!telemetry_session.Finish(&terr)) tools::Die(terr);
    return 0;
  }

  std::string err;
  std::optional<Trace> trace;
  if (!import_path.empty()) {
    ImportOptions iopts;
    iopts.cache_size =
        static_cast<int32_t>(flags.GetIntInRange("k", 16, 1, 1 << 30));
    iopts.dirty_cost = flags.GetDoubleInRange("dirty", 10.0, 0.0, 1e12);
    iopts.clean_cost = flags.GetDoubleInRange("clean", 1.0, 0.0, 1e12);
    iopts.max_requests = flags.GetIntInRange("max-requests", -1, -1,
                                             int64_t{1} << 40);
    auto imported = ImportKeyTraceFile(import_path, iopts, &err);
    if (!imported) tools::Die(err);
    std::cout << "imported " << imported->trace.requests.size()
              << " requests over " << imported->trace.instance.num_pages()
              << " keys"
              << (imported->has_ops ? " (RW-paging via read/write ops)"
                                    : " (single level)")
              << "\n";
    trace = std::move(imported->trace);
  } else {
    trace = ReadTraceFile(path, &err);
    if (!trace) tools::Die(err);
  }

  ThreadPool pool;
  EngineOptions eopts;
  eopts.batch = batch;
  // The oracle's occurrence tables are built once; Clone() shares them, so
  // the fresh-policy-per-trial discipline stays O(1) per trial.
  predict::PredictorPtr oracle;
  if (has_pred_flags && predictor_kind == "oracle") {
    oracle = predict::OraclePredictor::FromTrace(*trace);
  }
  const auto factory = [&](uint64_t s) -> PolicyPtr {
    if (!has_pred_flags) return MakePolicyByName(policy_name, s);
    return predict::MakePredictivePolicy(
        s, popts, oracle == nullptr ? nullptr : oracle->Clone());
  };
  const auto results = RunTrials(pool, *trace, factory, trials, seed, eopts);

  RunningStat cost, hits;
  int64_t evictions = 0;
  for (const auto& r : results) {
    cost.Add(r.eviction_cost);
    hits.Add(r.hit_rate());
    evictions += r.evictions;
  }
  std::cout << "policy " << policy_name << " on "
            << (import_path.empty() ? path : import_path) << " ("
            << trace->length() << " requests, "
            << trace->instance.DebugString() << ")\n";
  std::cout << "  eviction cost: " << Fmt(cost.mean(), 2);
  if (trials > 1) {
    std::cout << " +- " << Fmt(cost.ci95_halfwidth(), 2) << " (" << trials
              << " trials)";
  }
  std::cout << "\n  hit rate:      " << Fmt(hits.mean(), 4) << "\n";
  std::cout << "  evictions:     " << evictions / trials << "\n";

  if (flags.Has("opt")) {
    const OfflineBounds b = ComputeOfflineBounds(*trace);
    if (b.exact) {
      std::cout << "  offline OPT:   " << Fmt(b.lower, 2)
                << " (exact)\n  ratio:         "
                << Fmt(cost.mean() / b.lower, 3) << "\n";
    } else {
      std::cout << "  offline OPT in [" << Fmt(b.lower, 2) << ", "
                << Fmt(b.upper, 2) << "]\n  ratio in      ["
                << Fmt(cost.mean() / b.upper, 3) << ", "
                << Fmt(cost.mean() / b.lower, 3) << "]\n";
    }
  }
  if (!telemetry_session.Finish(&err)) tools::Die(err);
  return 0;
}
