// Generate a synthetic trace and write it to the wmlp text format.
//
// Usage:
//   wmlp_tracegen --kind zipf --n 64 --k 8 --ell 2 --length 10000
//       --alpha 0.8 --weights geometric --ratio 8 --mix uniform
//       --seed 1 --out trace.wmlp
//
// Kinds: zipf, uniform, loop (--loop-size), phases (--ws-size,
// --phase-len), scan (--scan-len, --scan-prob), markov (--stay, --window),
// wadv (weighted adversary; ignores --n/--ell), multigran (--chunks,
// --sectors, --chunk-prob; ignores --n/--ell).
// Weights: uniform, geometric, zipfpages, loguniform.
// Mix: lowest, uniform, rw:<write_ratio>, geo:<decay>.
#include <iostream>

#include "tool_util.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace wmlp {
namespace {

WeightModel ParseWeights(const std::string& s) {
  if (s == "uniform") return WeightModel::kUniform;
  if (s == "geometric") return WeightModel::kGeometricLevels;
  if (s == "zipfpages") return WeightModel::kZipfPages;
  if (s == "loguniform") return WeightModel::kLogUniform;
  tools::Die("unknown --weights '" + s + "'");
}

LevelMix ParseMix(const std::string& s, int32_t ell) {
  if (s == "lowest") return LevelMix::AllLowest(ell);
  if (s == "uniform") return LevelMix::UniformMix(ell);
  if (s.rfind("rw:", 0) == 0) {
    if (ell != 2) tools::Die("--mix rw requires --ell 2");
    return LevelMix::ReadWrite(std::strtod(s.c_str() + 3, nullptr));
  }
  if (s.rfind("geo:", 0) == 0) {
    return LevelMix::Geometric(ell, std::strtod(s.c_str() + 4, nullptr));
  }
  tools::Die("unknown --mix '" + s + "'");
}

}  // namespace
}  // namespace wmlp

int main(int argc, char** argv) {
  using namespace wmlp;
  const tools::Flags flags(argc, argv);
  const std::string kind = flags.GetString("kind", "zipf");
  // Every numeric flag is range-checked (tool_util.h convention): the
  // upper bounds double as the int32 narrowing guard for the casts below.
  const int32_t n =
      static_cast<int32_t>(flags.GetIntInRange("n", 64, 1, 1 << 30));
  const int32_t k =
      static_cast<int32_t>(flags.GetIntInRange("k", 8, 1, 1 << 30));
  const int32_t ell =
      static_cast<int32_t>(flags.GetIntInRange("ell", 1, 1, 64));
  const int64_t length =
      flags.GetIntInRange("length", 10000, 0, int64_t{1} << 40);
  const double alpha = flags.GetDoubleInRange("alpha", 0.8, 1e-6, 1e6);
  const double ratio = flags.GetDoubleInRange("ratio", 8.0, 1e-6, 1e9);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string out = flags.GetString("out");
  if (out.empty()) tools::Die("--out is required");

  const WeightModel wm = ParseWeights(flags.GetString("weights", "geometric"));
  const LevelMix mix = ParseMix(flags.GetString("mix", "lowest"), ell);
  Instance inst(n, k, ell, MakeWeights(n, ell, wm, ratio, seed));

  Trace trace{Instance::Uniform(1, 1), {}};
  if (kind == "zipf") {
    trace = GenZipf(inst, length, alpha, mix, seed + 1);
  } else if (kind == "uniform") {
    trace = GenUniform(inst, length, mix, seed + 1);
  } else if (kind == "loop") {
    trace = GenLoop(
        inst, length,
        static_cast<int32_t>(
            flags.GetIntInRange("loop-size", k + 1, 1, 1 << 30)),
        mix);
  } else if (kind == "phases") {
    trace = GenPhases(
        inst, length,
        static_cast<int32_t>(
            flags.GetIntInRange("ws-size", k + 4, 1, 1 << 30)),
        flags.GetIntInRange("phase-len", 500, 1, int64_t{1} << 40), alpha,
        mix, seed + 1);
  } else if (kind == "scan") {
    trace = GenScanMix(
        inst, length, alpha,
        static_cast<int32_t>(
            flags.GetIntInRange("scan-len", 32, 1, 1 << 30)),
        flags.GetDoubleInRange("scan-prob", 0.02, 0.0, 1.0), mix,
        seed + 1);
  } else if (kind == "markov") {
    trace = GenMarkov(
        inst, length, flags.GetDoubleInRange("stay", 0.7, 0.0, 1.0),
        static_cast<int32_t>(
            flags.GetIntInRange("window", 16, 1, 1 << 30)),
        alpha, mix, seed + 1);
  } else if (kind == "wadv") {
    trace = GenWeightedAdversary(k, length, ratio, seed + 1);
  } else if (kind == "multigran") {
    trace = GenMultiGranularity(
        static_cast<int32_t>(
            flags.GetIntInRange("chunks", 32, 1, 1 << 20)),
        static_cast<int32_t>(
            flags.GetIntInRange("sectors", 8, 1, 1 << 20)),
        k, length, flags.GetDoubleInRange("chunk-prob", 0.15, 0.0, 1.0),
        alpha, seed + 1);
  } else {
    tools::Die("unknown --kind '" + kind + "'");
  }

  if (!WriteTraceFile(trace, out)) tools::Die("cannot write " + out);
  const TraceStats stats = ComputeStats(trace);
  std::cout << "wrote " << out << ": " << trace.instance.DebugString()
            << ", T=" << stats.length << ", distinct pages "
            << stats.distinct_pages << ", mean level "
            << stats.mean_level << "\n";
  return 0;
}
