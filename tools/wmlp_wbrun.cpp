// Generate or load a writeback trace and run writeback-aware policies.
//
// Usage:
//   wmlp_wbrun --n 64 --k 8 --length 10000 --write-ratio 0.3
//       --dirty 20 --clean 1 [--alpha 0.8] [--seed 1] [--save t.wbtrace]
//   wmlp_wbrun --trace t.wbtrace
//
// Accepts the shared telemetry flags (--telemetry-out, --trace-out,
// --stats-interval, --sample-interval, --sample-retention, --http-port,
// --http-port-file); see src/telemetry/export.h.
//
// Runs the native writeback baselines and the paper's algorithms through
// the Lemma 2.1 reduction, printing a comparison against the offline
// lower bound. Reduction policies are constructed by name via the policy
// registry; each is additionally driven over the reduced RW trace by the
// engine, so the table shows Lemma 2.1's cost(wb) <= cost(rw) live.
#include <iostream>

#include "engine/engine.h"
#include "engine/step_observers.h"
#include "harness/table.h"
#include "offline/multilevel_dp.h"
#include "offline/weighted_opt.h"
#include "registry/policy_registry.h"
#include "tool_util.h"
#include "writeback/rw_reduction.h"
#include "writeback/wb_trace_io.h"
#include "writeback/writeback_policies.h"
#include "writeback/writeback_simulator.h"

int main(int argc, char** argv) {
  using namespace wmlp;
  const tools::Flags flags(argc, argv);
  const telemetry::TelemetryRunOptions topts =
      tools::ParseTelemetryFlags(flags);
  telemetry::TelemetrySession telemetry_session(topts);
  tools::DieOnSessionStartError(telemetry_session);

  wb::WbTrace trace{wb::WbInstance(1, 1, {1.0}, {1.0}), {}};
  if (flags.Has("trace")) {
    std::string err;
    auto loaded = wb::ReadWbTraceFile(flags.GetString("trace"), &err);
    if (!loaded) tools::Die(err);
    trace = std::move(*loaded);
  } else {
    wb::WbWorkloadOptions opts;
    opts.num_pages =
        static_cast<int32_t>(flags.GetIntInRange("n", 64, 1, 1 << 30));
    opts.cache_size =
        static_cast<int32_t>(flags.GetIntInRange("k", 8, 1, 1 << 30));
    opts.length =
        flags.GetIntInRange("length", 10000, 0, int64_t{1} << 40);
    opts.alpha = flags.GetDoubleInRange("alpha", 0.8, 1e-6, 1e6);
    opts.write_ratio =
        flags.GetDoubleInRange("write-ratio", 0.3, 0.0, 1.0);
    opts.dirty_cost = flags.GetDoubleInRange("dirty", 20.0, 0.0, 1e12);
    opts.clean_cost = flags.GetDoubleInRange("clean", 1.0, 0.0, 1e12);
    opts.page_dependent = flags.Has("page-dependent");
    opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    trace = wb::GenWbZipf(opts);
  }
  if (flags.Has("save")) {
    if (!wb::WriteWbTraceFile(trace, flags.GetString("save"))) {
      tools::Die("cannot write " + flags.GetString("save"));
    }
    std::cout << "saved trace to " << flags.GetString("save") << "\n";
  }

  const Cost lb = MultiLevelLowerBound(wb::ToRwTrace(trace));
  std::cout << "writeback trace: n=" << trace.instance.num_pages()
            << " k=" << trace.instance.cache_size()
            << " T=" << trace.length() << "; offline lower bound " << lb
            << "\n\n";

  // Small instances: exact optimum too.
  if (trace.instance.num_pages() <= 10 && trace.length() <= 200) {
    std::cout << "exact offline optimum: " << WritebackOptimal(trace)
              << "\n\n";
  }

  Table table({"policy", "cost", "vs-LB", "dirty-evictions", "rw-cost"});
  auto report = [&](wb::WbPolicy& p, const std::string& rw_cost) {
    const auto res = wb::Simulate(trace, p);
    table.AddRow({p.name(), Fmt(res.eviction_cost, 1),
                  lb > 0 ? Fmt(res.eviction_cost / lb, 2) : "-",
                  FmtInt(res.dirty_evictions), rw_cost});
  };
  wb::WbLru lru;
  wb::WbCleanFirstLru clean_first;
  wb::WbLandlord landlord;
  report(lru, "-");
  report(clean_first, "-");
  report(landlord, "-");

  // The paper's algorithms, by registry name, through the Lemma 2.1
  // reduction. The rw-cost column re-runs the same policy over the reduced
  // RW trace via the engine: Lemma 2.1 guarantees cost <= rw-cost.
  const Trace rw_trace = wb::ToRwTrace(trace);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  for (const char* name :
       {"waterfill", "randomized", "fractional-rounded-linear"}) {
    wb::WbFromRwPolicy wb_policy(MakePolicyByName(name, seed));
    PolicyPtr rw_policy = MakePolicyByName(name, seed);
    TraceSource source(rw_trace);
    Engine engine(source, *rw_policy);
    report(wb_policy, Fmt(engine.Run().eviction_cost, 1));
  }
  table.Print(std::cout);
  std::string terr;
  if (!telemetry_session.Finish(&terr)) tools::Die(terr);
  return 0;
}
