// wmlp_lint: project-specific static-analysis rules (the machine-checked
// half of the determinism and hot-path contracts; docs/ARCHITECTURE.md
// §12). The engine is a token-level pass over comment/string-stripped
// source — deliberately so: the invariants it guards are lexically
// recognizable (a std::rand token, an un-gated telemetry:: call, a
// WMLP_CHECK_MSG between a WMLP_HOT marker's braces), which keeps the
// checker dependency-free and runnable in every environment the build
// runs in, clang or not. Type-level properties the text can't prove are
// covered by the companion gates: -Wthread-safety on the clang CI legs
// and the nm-based hot-path allocation walk
// (scripts/check_hot_path_allocs.py).
//
// Rules (ids are stable; tests/lint_fixtures has one trigger TU each):
//   determinism-rng   std::rand / srand / rand() / random_device outside
//                     util/rng.h. Seeded policy randomness must flow
//                     through wmlp::Rng.
//   unordered-iter    range-for over a std::unordered_{map,set} variable
//                     in a determinism-contract dir (src/core, src/server,
//                     src/engine, src/sim): iteration order is
//                     implementation-defined, so any trajectory derived
//                     from it breaks bitwise reproducibility.
//   wall-clock        chrono::system_clock / steady_clock outside
//                     src/telemetry and bench code: serve decisions may
//                     not depend on real time.
//   float-eq          == / != against a floating-point literal outside
//                     approved helper files; use an epsilon helper or an
//                     integral representation. (Token-level
//                     approximation: literal-free double compares are
//                     bitwise-identity idioms the repo allows, e.g.
//                     waterfill's stale-key filter.)
//   telemetry-gate    telemetry:: / WMLP_TELEMETRY_{COUNTER,GAUGE,
//                     HISTOGRAM} in src/ outside src/telemetry not under
//                     `if constexpr (telemetry::kEnabled)`.
//                     WMLP_TELEMETRY_SPAN is exempt: the macro itself
//                     vanishes when telemetry is compiled out.
//   hot-check-msg     WMLP_CHECK_MSG inside a WMLP_HOT function body: the
//                     message's ostringstream allocates at the call site,
//                     inside the allocation-free tree.
//
// Suppression: a `wmlp-lint-allow(<rule-id>)` comment exempts its own
// line and the next line. Every suppression marks an intentional,
// documented exception (wall-clock throughput reporting, bitwise witness
// compares) — not a way to mute noise.
#pragma once

#include <string>
#include <vector>

namespace wmlp::lint {

struct Finding {
  std::string file;   // path as reported (relative to the lint root)
  int line = 0;       // 1-based
  std::string rule;   // stable rule id, e.g. "determinism-rng"
  std::string message;
};

// All stable rule ids, for --list-rules and fixture assertions.
std::vector<std::string> RuleIds();

// Lints one file's contents. `path` decides which directory-scoped rules
// apply and should be the path relative to the repository root (e.g.
// "src/core/waterfill.cpp"); `header_context` optionally carries the
// paired header's contents so member declarations participate in
// unordered-iter tracking.
std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content,
                                const std::string& header_context = "");

// Lints files on disk. Paths may be absolute; `root` is stripped to form
// the rule-relevant relative path. Files that cannot be read produce a
// "read-error" finding rather than a crash.
std::vector<Finding> LintFiles(const std::string& root,
                               const std::vector<std::string>& files);

// Collects the lintable tree: every *.h / *.cpp under <root>/src.
std::vector<std::string> CollectTree(const std::string& root);

// Extracts the "file" entries from a compile_commands.json (minimal
// parser — the schema is flat and the build never emits escaped quotes
// in paths). Returns absolute paths as found.
std::vector<std::string> ReadCompileDb(const std::string& db_path);

}  // namespace wmlp::lint
