// wmlp_lint: the project determinism / hot-path / telemetry-gating
// checker (rules in lint/lint.h, contract in docs/ARCHITECTURE.md §12).
//
// Usage (normally via scripts/run_wmlp_lint.sh):
//   wmlp_lint --root <repo> [--compile-db <compile_commands.json>]
//   wmlp_lint --root <repo> --files a.cpp b.h [--as-dir src/core]
//   wmlp_lint --list-rules
//
// With --compile-db, the linted set is the db's in-tree sources unioned
// with every header under <root>/src (headers never appear as "file"
// entries); without it, the whole <root>/src tree. --files overrides
// both and lints exactly the named files; --as-dir reports them as if
// they lived in the given directory, which is how the fixture tests
// exercise directory-scoped rules on TUs that live under tests/.
//
// Output: one `path:line: [rule-id] message` per finding, sorted.
// Exit codes: 0 clean, 1 findings, 2 usage error.
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

[[noreturn]] void Usage(const std::string& message) {
  std::cerr << "error: " << message << "\n"
            << "usage: wmlp_lint --root <repo> [--compile-db <json>] |\n"
            << "       wmlp_lint --root <repo> --files <f>... "
               "[--as-dir <dir>] |\n"
            << "       wmlp_lint --list-rules\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string compile_db;
  std::string as_dir;
  std::vector<std::string> files;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) Usage(std::string(flag) + " requires a value");
      return argv[++i];
    };
    if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--compile-db") {
      compile_db = value("--compile-db");
    } else if (arg == "--as-dir") {
      as_dir = value("--as-dir");
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--files") {
      while (i + 1 < argc &&
             std::string(argv[i + 1]).rfind("--", 0) != 0) {
        files.push_back(argv[++i]);
      }
      if (files.empty()) Usage("--files requires at least one file");
    } else {
      Usage("unknown flag: " + arg);
    }
  }

  if (list_rules) {
    for (const std::string& rule : wmlp::lint::RuleIds()) {
      std::cout << rule << "\n";
    }
    return 0;
  }
  if (root.empty()) Usage("--root is required");

  std::vector<wmlp::lint::Finding> findings;
  if (!files.empty()) {
    if (as_dir.empty()) {
      findings = wmlp::lint::LintFiles(root, files);
    } else {
      // Lint each file as if it lived under as_dir, so the
      // directory-scoped rules (unordered-iter, telemetry-gate) apply to
      // fixture TUs stored elsewhere. The path must be synthesized
      // BEFORE linting — the rules key off it.
      for (const std::string& file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
          std::cerr << "error: cannot open " << file << "\n";
          return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const auto slash = file.rfind('/');
        const std::string synthetic =
            as_dir + "/" +
            (slash == std::string::npos ? file : file.substr(slash + 1));
        std::vector<wmlp::lint::Finding> file_findings =
            wmlp::lint::LintSource(synthetic, buf.str());
        findings.insert(findings.end(), file_findings.begin(),
                        file_findings.end());
      }
    }
  } else {
    // Union the compile db's in-tree sources with the src/ tree walk:
    // the db contributes exactly what the build compiles, the walk adds
    // headers and any source temporarily out of the build.
    std::set<std::string> set;
    for (const std::string& f : wmlp::lint::CollectTree(root)) {
      set.insert(f);
    }
    if (!compile_db.empty()) {
      const std::string src_prefix = root + "/src/";
      for (const std::string& f : wmlp::lint::ReadCompileDb(compile_db)) {
        if (f.rfind(src_prefix, 0) == 0) set.insert(f);
      }
    }
    findings = wmlp::lint::LintFiles(
        root, std::vector<std::string>(set.begin(), set.end()));
  }

  for (const wmlp::lint::Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "wmlp_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  std::cout << "wmlp_lint: clean\n";
  return 0;
}

// The fixture TUs under tests/lint_fixtures are linted, never linked, so
// wmlp_lint itself needs no dependency on the wmlp libraries.
