#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string_view>

namespace wmlp::lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Source preparation.
// ---------------------------------------------------------------------------

// Blanks comments, string literals, and char literals with spaces while
// preserving every newline, so rule regexes never match quoted or
// commented text and findings keep their true line numbers. Raw strings
// are handled for the default R"(...)"  and custom-delimiter forms.
std::string StripCommentsAndStrings(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_end;  // )delim" terminator while in a raw string
  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          const size_t open = src.find('(', i + 2);
          if (open != std::string::npos) {
            raw_end = ")" + src.substr(i + 2, open - i - 2) + "\"";
            for (size_t j = i; j <= open; ++j) out[j] = ' ';
            i = open;
            state = State::kRaw;
          }
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (src.compare(i, raw_end.size(), raw_end) == 0) {
          for (size_t j = i; j < i + raw_end.size(); ++j) out[j] = ' ';
          i += raw_end.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Path classification.
// ---------------------------------------------------------------------------

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool InDeterminismContractDir(std::string_view rel) {
  return StartsWith(rel, "src/core/") || StartsWith(rel, "src/server/") ||
         StartsWith(rel, "src/engine/") || StartsWith(rel, "src/sim/");
}

bool IsBenchFile(std::string_view rel) {
  const auto slash = rel.rfind('/');
  const std::string_view base =
      slash == std::string_view::npos ? rel : rel.substr(slash + 1);
  return base.find("bench") != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// The per-file pass.
// ---------------------------------------------------------------------------

struct Ctx {
  const std::string& path;
  const std::vector<std::string>& raw;       // original lines
  const std::vector<std::string>& stripped;  // comment/string-blanked lines
  std::vector<Finding>& findings;
  // (line index, rule) pairs exempted by wmlp-lint-allow comments.
  const std::set<std::pair<size_t, std::string>>& allowed;
};

void Report(Ctx& ctx, size_t line_idx, const std::string& rule,
            const std::string& message) {
  if (ctx.allowed.count({line_idx, rule}) > 0) return;
  ctx.findings.push_back(
      {ctx.path, static_cast<int>(line_idx + 1), rule, message});
}

bool IsPreprocessor(const std::string& line) {
  const auto pos = line.find_first_not_of(" \t");
  return pos != std::string::npos && line[pos] == '#';
}

const std::regex& RngRe() {
  static const std::regex re(
      R"(\bstd\s*::\s*rand\b|\bsrand\s*\(|\brand\s*\(|\brandom_device\b)");
  return re;
}

void CheckDeterminismRng(Ctx& ctx) {
  if (ctx.path.find("util/rng.h") != std::string::npos) return;
  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    if (std::regex_search(ctx.stripped[i], RngRe())) {
      Report(ctx, i, "determinism-rng",
             "unseeded/global RNG; route randomness through wmlp::Rng "
             "(util/rng.h)");
    }
  }
}

void CheckWallClock(Ctx& ctx) {
  if (StartsWith(ctx.path, "src/telemetry/") || IsBenchFile(ctx.path)) {
    return;
  }
  static const std::regex re(R"(\b(?:system_clock|steady_clock)\b)");
  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    if (std::regex_search(ctx.stripped[i], re)) {
      Report(ctx, i, "wall-clock",
             "wall-clock read outside src/telemetry/bench code; serve "
             "decisions must not depend on real time");
    }
  }
}

void CheckFloatEq(Ctx& ctx) {
  // A floating literal: 1.0, .5, 1., 1e-9, 1.5e3, 2.0f, 3f — but not a
  // bare integer.
  static const std::string kFloat =
      R"((?:\d+\.\d*|\.\d+|\d+\.)(?:[eE][+-]?\d+)?[fFlL]?|\d+[eE][+-]?\d+[fFlL]?|\d+[fF]\b)";
  static const std::regex rhs("(==|!=)\\s*[-+]?(?:" + kFloat + ")");
  static const std::regex lhs("(?:" + kFloat + ")\\s*(==|!=)");
  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    const std::string& line = ctx.stripped[i];
    if (std::regex_search(line, rhs) || std::regex_search(line, lhs)) {
      Report(ctx, i, "float-eq",
             "exact comparison against a floating-point literal; compare "
             "an integral representation or an epsilon band instead");
    }
  }
}

void CheckUnorderedIter(Ctx& ctx, const std::string& header_context) {
  if (!InDeterminismContractDir(ctx.path)) return;
  // Names declared with an unordered container type, in this file and in
  // the paired header (so members participate). Single-line declarations
  // only — the repo's style keeps declarator and name on one line.
  static const std::regex decl_re(
      R"(\bunordered_(?:map|set)\s*<.*>\s*[&*]?\s*(\w+)\s*[;={(,)])");
  std::set<std::string> unordered_names;
  auto scan_decls = [&](const std::string& text) {
    for (const std::string& line : SplitLines(text)) {
      auto begin =
          std::sregex_iterator(line.begin(), line.end(), decl_re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        unordered_names.insert((*it)[1].str());
      }
    }
  };
  scan_decls(StripCommentsAndStrings(header_context));
  for (const std::string& line : ctx.stripped) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), decl_re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_names.insert((*it)[1].str());
    }
  }

  static const std::regex range_for_re(R"(\bfor\s*\([^;)]*:\s*([^)]+)\))");
  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(ctx.stripped[i], m, range_for_re)) continue;
    const std::string range_expr = m[1].str();
    bool flagged = range_expr.find("unordered_") != std::string::npos;
    if (!flagged) {
      static const std::regex ident_re(R"(\b(\w+)\b)");
      auto begin = std::sregex_iterator(range_expr.begin(),
                                        range_expr.end(), ident_re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        if (unordered_names.count((*it)[1].str()) > 0) {
          flagged = true;
          break;
        }
      }
    }
    if (flagged) {
      Report(ctx, i, "unordered-iter",
             "range-iteration over an unordered container in a "
             "determinism-contract dir; iterate a sorted copy or an "
             "index-ordered structure");
    }
  }
}

// Structural pass: tracks brace depth to know (a) whether a line sits
// inside an `if constexpr (telemetry::kEnabled)` block and (b) whether it
// sits inside a WMLP_HOT function body. Both rules need the same walk.
void CheckStructural(Ctx& ctx) {
  const bool telemetry_scope =
      StartsWith(ctx.path, "src/") &&
      !StartsWith(ctx.path, "src/telemetry/");

  static const std::regex gate_re(
      R"(\bif\s+constexpr\s*\([^)]*kEnabled)");
  static const std::regex telemetry_use_re(
      R"(\btelemetry\s*::|\bWMLP_TELEMETRY_(?:COUNTER|GAUGE|HISTOGRAM)\b)");

  int depth = 0;
  std::vector<int> gate_stack;  // depths at which a kEnabled block opened
  bool gate_armed = false;
  int hot_depth = -1;  // body depth of the innermost WMLP_HOT function
  bool hot_armed = false;

  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    const std::string& line = ctx.stripped[i];
    const bool preprocessor = IsPreprocessor(line);

    if (!preprocessor) {
      if (std::regex_search(line, gate_re)) gate_armed = true;
      if (line.find("WMLP_HOT") != std::string::npos && hot_depth < 0) {
        hot_armed = true;
      }

      // telemetry-gate: an un-gated telemetry use. The gate line itself,
      // WMLP_TELEMETRY_SPAN (self-vanishing macro), and preprocessor
      // lines are exempt.
      if (telemetry_scope && gate_stack.empty() && !gate_armed &&
          line.find("WMLP_TELEMETRY_SPAN") == std::string::npos &&
          std::regex_search(line, telemetry_use_re)) {
        Report(ctx, i, "telemetry-gate",
               "telemetry call not under `if constexpr "
               "(telemetry::kEnabled)`; un-gated calls put registry work "
               "on the serve path even in telemetry-off builds");
      }

      // hot-check-msg: WMLP_CHECK_MSG inside a WMLP_HOT body.
      if (hot_depth >= 0 && depth >= hot_depth &&
          line.find("WMLP_CHECK_MSG") != std::string::npos) {
        Report(ctx, i, "hot-check-msg",
               "WMLP_CHECK_MSG inside a WMLP_HOT function: the message's "
               "ostringstream allocates at the call site; use WMLP_CHECK "
               "plus a WMLP_COLD [[noreturn]] reporter");
      }
    }

    if (preprocessor) continue;
    for (const char c : line) {
      if (c == '{') {
        ++depth;
        if (gate_armed) {
          gate_stack.push_back(depth);
          gate_armed = false;
        }
        if (hot_armed) {
          hot_depth = depth;
          hot_armed = false;
        }
      } else if (c == '}') {
        if (!gate_stack.empty() && gate_stack.back() == depth) {
          gate_stack.pop_back();
        }
        if (hot_depth == depth) hot_depth = -1;
        --depth;
      } else if (c == ';') {
        // Nothing legitimate separates a pending marker from its body
        // brace with a semicolon: this is either a mere declaration
        // (WMLP_HOT prototype) or a braceless `if constexpr (kEnabled)
        // stmt;`, which gates only its own line.
        gate_armed = false;
        hot_armed = false;
      }
    }
  }
}

// kernel-parity: every *Batch entry point appearing in a src/kernels/ TU
// must have its *BatchScalar twin in the same TU — the bitwise-parity
// contract (docs/ARCHITECTURE.md §13) that ForceScalar() and the lockstep
// tests rely on. Heuristic by identifier: any FooBatch occurrence without
// a FooBatchScalar occurrence anywhere in the TU is flagged at its first
// occurrence; a mere call to the scalar twin counts as presence, which is
// exactly the dispatch-wrapper shape the kernel TUs use.
void CheckKernelParity(Ctx& ctx) {
  if (!StartsWith(ctx.path, "src/kernels/")) return;
  static const std::string_view kCpp = ".cpp";
  if (ctx.path.size() < kCpp.size() ||
      ctx.path.compare(ctx.path.size() - kCpp.size(), kCpp.size(),
                       kCpp) != 0) {
    return;
  }
  static const std::regex name_re(R"(\b([A-Za-z_]\w*?)Batch(Scalar)?\s*\()");
  std::set<std::string> scalar_names;
  std::map<std::string, size_t> first_batch_line;
  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    const std::string& line = ctx.stripped[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), name_re);
         it != std::sregex_iterator(); ++it) {
      const std::string base = (*it)[1].str();
      if ((*it)[2].matched) {
        scalar_names.insert(base);
      } else {
        first_batch_line.emplace(base, i);
      }
    }
  }
  for (const auto& [base, line] : first_batch_line) {
    if (scalar_names.count(base) > 0) continue;
    Report(ctx, line, "kernel-parity",
           base + "Batch has no " + base +
               "BatchScalar twin in this TU; every SIMD kernel entry "
               "point needs its scalar reference beside it "
               "(docs/ARCHITECTURE.md section 13)");
  }
}

std::set<std::pair<size_t, std::string>> ParseSuppressions(
    const std::vector<std::string>& raw_lines) {
  static const std::regex allow_re(R"(wmlp-lint-allow\(([a-z-]+)\))");
  std::set<std::pair<size_t, std::string>> allowed;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    auto begin = std::sregex_iterator(raw_lines[i].begin(),
                                      raw_lines[i].end(), allow_re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string rule = (*it)[1].str();
      allowed.insert({i, rule});
      allowed.insert({i + 1, rule});
    }
  }
  return allowed;
}

}  // namespace

std::vector<std::string> RuleIds() {
  return {"determinism-rng", "unordered-iter", "wall-clock",   "float-eq",
          "telemetry-gate",  "hot-check-msg",  "kernel-parity"};
}

std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content,
                                const std::string& header_context) {
  const std::vector<std::string> raw = SplitLines(content);
  const std::vector<std::string> stripped =
      SplitLines(StripCommentsAndStrings(content));
  const auto allowed = ParseSuppressions(raw);

  std::vector<Finding> findings;
  Ctx ctx{path, raw, stripped, findings, allowed};
  CheckDeterminismRng(ctx);
  CheckWallClock(ctx);
  CheckFloatEq(ctx);
  CheckUnorderedIter(ctx, header_context);
  CheckStructural(ctx);
  CheckKernelParity(ctx);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

namespace {

std::string ReadFileOrEmpty(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string RelativeTo(const std::string& root, const std::string& file) {
  std::error_code ec;
  const fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..") return file;
  return rel.generic_string();
}

}  // namespace

std::vector<Finding> LintFiles(const std::string& root,
                               const std::vector<std::string>& files) {
  std::vector<Finding> findings;
  for (const std::string& file : files) {
    const std::string rel = RelativeTo(root, file);
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      findings.push_back({rel, 0, "read-error", "cannot open file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    // For a .cpp, the paired .h contributes member declarations to
    // unordered-iter tracking (the header itself is linted separately).
    std::string header_context;
    fs::path p(file);
    if (p.extension() == ".cpp") {
      header_context = ReadFileOrEmpty(p.replace_extension(".h"));
    }
    std::vector<Finding> file_findings =
        LintSource(rel, buf.str(), header_context);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

std::vector<std::string> CollectTree(const std::string& root) {
  std::vector<std::string> files;
  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  for (fs::recursive_directory_iterator it(src, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const fs::path& p = it->path();
    if (p.extension() == ".h" || p.extension() == ".cpp") {
      files.push_back(p.generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::string> ReadCompileDb(const std::string& db_path) {
  const std::string text = ReadFileOrEmpty(db_path);
  std::vector<std::string> files;
  static const std::regex file_re(R"re("file"\s*:\s*"([^"]+)")re");
  auto begin = std::sregex_iterator(text.begin(), text.end(), file_re);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    files.push_back((*it)[1].str());
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace wmlp::lint
