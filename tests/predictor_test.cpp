// Property battery for the prediction layer (docs/ARCHITECTURE.md §14):
// the offline oracles against brute-force scans, and the noise models'
// determinism / mean-preservation / no-NaN-no-negative contracts (the
// NaN-blind validation bug class PR 2's range getters were built against).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "predict/noise.h"
#include "predict/oracle.h"
#include "predict/predictor.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

using predict::EwmaPredictor;
using predict::kNever;
using predict::MakeNoisyPredictor;
using predict::NoiseKind;
using predict::NoiseOptions;
using predict::OraclePredictor;
using predict::Predictor;
using predict::PredictorPtr;

Trace RandomTrace(int32_t n, int32_t k, int64_t length, uint64_t seed) {
  Instance inst(n, k, 1, MakeWeights(n, 1, WeightModel::kLogUniform, 8.0,
                                     DeriveSeed(seed, 0)));
  return GenZipf(std::move(inst), length, 0.8, LevelMix::AllLowest(1),
                 DeriveSeed(seed, 1));
}

// Brute-force next occurrence of p strictly after `now`, or kNever.
double BruteNext(const std::vector<Request>& reqs, Time now, PageId p) {
  for (size_t j = 0; j < reqs.size(); ++j) {
    if (static_cast<Time>(j) > now && reqs[j].page == p) {
      return static_cast<double>(j);
    }
  }
  return kNever;
}

// Brute-force distinct pages strictly between p's previous occurrence
// (relative to its next occurrence after `now`) and that next occurrence.
double BruteReuse(const std::vector<Request>& reqs, Time now, PageId p) {
  int64_t next = -1;
  for (size_t j = 0; j < reqs.size(); ++j) {
    if (static_cast<Time>(j) > now && reqs[j].page == p) {
      next = static_cast<int64_t>(j);
      break;
    }
  }
  if (next < 0) return kNever;
  int64_t prior = -1;
  for (int64_t j = next - 1; j >= 0; --j) {
    if (reqs[static_cast<size_t>(j)].page == p) {
      prior = j;
      break;
    }
  }
  if (prior < 0) return kNever;
  std::set<PageId> distinct;
  for (int64_t j = prior + 1; j < next; ++j) {
    distinct.insert(reqs[static_cast<size_t>(j)].page);
  }
  return static_cast<double>(distinct.size());
}

TEST(OracleTest, NextRequestMatchesBruteForceOnRandomTraces) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Trace trace = RandomTrace(24, 8, 160, seed);
    PredictorPtr oracle = OraclePredictor::FromTrace(trace);
    oracle->Attach(trace.instance);
    for (Time now = -1; now < trace.length(); ++now) {
      for (PageId p = 0; p < trace.instance.num_pages(); ++p) {
        EXPECT_EQ(oracle->PredictNext(now, p),
                  BruteNext(trace.requests, now, p))
            << "seed=" << seed << " now=" << now << " p=" << p;
      }
    }
  }
}

TEST(OracleTest, ReuseDistanceMatchesBruteForceOnRandomTraces) {
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    const Trace trace = RandomTrace(16, 6, 120, seed);
    PredictorPtr oracle = OraclePredictor::FromTrace(trace);
    for (Time now = -1; now < trace.length(); ++now) {
      for (PageId p = 0; p < trace.instance.num_pages(); ++p) {
        EXPECT_EQ(oracle->PredictReuseDistance(now, p),
                  BruteReuse(trace.requests, now, p))
            << "seed=" << seed << " now=" << now << " p=" << p;
      }
    }
  }
}

TEST(OracleTest, NeverSentinelAfterLastOccurrence) {
  const Trace trace = RandomTrace(12, 4, 60, 7);
  PredictorPtr oracle = OraclePredictor::FromTrace(trace);
  for (PageId p = 0; p < trace.instance.num_pages(); ++p) {
    EXPECT_EQ(oracle->PredictNext(trace.length(), p), kNever);
  }
}

TEST(OracleTest, CloneSharesTablesAndAnswersIdentically) {
  const Trace trace = RandomTrace(20, 8, 100, 21);
  PredictorPtr oracle = OraclePredictor::FromTrace(trace);
  PredictorPtr clone = oracle->Clone();
  for (Time now = 0; now < trace.length(); now += 7) {
    for (PageId p = 0; p < trace.instance.num_pages(); ++p) {
      EXPECT_EQ(oracle->PredictNext(now, p), clone->PredictNext(now, p));
    }
  }
}

TEST(EwmaTest, PredictsStrictlyAfterNowAndLearnsGaps) {
  Instance inst = Instance::Uniform(8, 4);
  EwmaPredictor ewma(0.5, 0);
  ewma.Attach(inst);
  EXPECT_EQ(ewma.PredictNext(0, 3), kNever);  // never seen
  // Page 3 every 5 steps: the EWMA gap converges to 5.
  for (Time t = 0; t <= 40; t += 5) ewma.Observe(t, Request{3, 1});
  const double pred = ewma.PredictNext(40, 3);
  EXPECT_GT(pred, 40.0);
  EXPECT_NEAR(pred, 45.0, 1e-9);
  // Prediction is clamped strictly past any later `now`.
  EXPECT_GT(ewma.PredictNext(100, 3), 100.0);
}

TEST(EwmaTest, CloneIsIndependent) {
  Instance inst = Instance::Uniform(4, 2);
  EwmaPredictor ewma(0.25, 0);
  ewma.Attach(inst);
  ewma.Observe(0, Request{1, 1});
  ewma.Observe(6, Request{1, 1});
  PredictorPtr clone = ewma.Clone();
  EXPECT_EQ(clone->PredictNext(6, 1), ewma.PredictNext(6, 1));
  clone->Observe(7, Request{1, 1});
  // Diverging the clone must not move the original.
  EXPECT_NEAR(ewma.PredictNext(6, 1), 12.0, 1e-9);
}

PredictorPtr NoisyOracle(const Trace& trace, NoiseKind kind, double eta,
                         uint64_t seed) {
  NoiseOptions options;
  options.kind = kind;
  options.eta = eta;
  options.seed = seed;
  std::string error;
  PredictorPtr p =
      MakeNoisyPredictor(OraclePredictor::FromTrace(trace), options, &error);
  EXPECT_NE(p, nullptr) << error;
  p->Attach(trace.instance);
  return p;
}

TEST(NoiseTest, DeterministicPerSeedAndQueryOrderIndependent) {
  const Trace trace = RandomTrace(20, 8, 150, 31);
  for (const NoiseKind kind :
       {NoiseKind::kLogNormal, NoiseKind::kSwap, NoiseKind::kStale}) {
    PredictorPtr a = NoisyOracle(trace, kind, 0.7, 99);
    PredictorPtr b = NoisyOracle(trace, kind, 0.7, 99);
    PredictorPtr c = NoisyOracle(trace, kind, 0.7, 100);
    // b queried in reverse order must agree with a bit-for-bit.
    bool any_seed_difference = false;
    for (Time now = 0; now < trace.length(); now += 3) {
      for (PageId p = 0; p < trace.instance.num_pages(); ++p) {
        const double va = a->PredictNext(now, p);
        const Time rnow = (trace.length() - 3) - now;
        EXPECT_EQ(b->PredictNext(rnow, p), a->PredictNext(rnow, p));
        EXPECT_EQ(va, a->PredictNext(now, p));  // pure: re-query identical
        if (c->PredictNext(now, p) != va) any_seed_difference = true;
      }
    }
    if (kind != NoiseKind::kStale) {
      EXPECT_TRUE(any_seed_difference)
          << "noise kind " << NoiseKindName(kind) << " ignored its seed";
    }
  }
}

TEST(NoiseTest, NoModelEmitsNaNOrNonPositiveGaps) {
  const Trace trace = RandomTrace(16, 6, 120, 41);
  for (const NoiseKind kind :
       {NoiseKind::kNone, NoiseKind::kLogNormal, NoiseKind::kSwap,
        NoiseKind::kStale}) {
    for (const double eta : {0.0, 0.3, 1.0}) {
      if (kind == NoiseKind::kNone && eta > 0.0) continue;
      PredictorPtr noisy = NoisyOracle(trace, kind, eta, 5);
      for (Time now = -1; now < trace.length(); ++now) {
        for (PageId p = 0; p < trace.instance.num_pages(); ++p) {
          const double pred = noisy->PredictNext(now, p);
          EXPECT_FALSE(std::isnan(pred));
          EXPECT_GE(pred, 0.0);
          EXPECT_GT(pred, static_cast<double>(now));
          const double rd = noisy->PredictReuseDistance(now, p);
          EXPECT_FALSE(std::isnan(rd));
        }
      }
    }
  }
}

TEST(NoiseTest, LogNormalZeroEtaIsExactPassthrough) {
  const Trace trace = RandomTrace(16, 6, 120, 51);
  PredictorPtr base = OraclePredictor::FromTrace(trace);
  PredictorPtr noisy = NoisyOracle(trace, NoiseKind::kLogNormal, 0.0, 5);
  for (Time now = -1; now < trace.length(); ++now) {
    for (PageId p = 0; p < trace.instance.num_pages(); ++p) {
      EXPECT_EQ(noisy->PredictNext(now, p), base->PredictNext(now, p));
    }
  }
}

TEST(NoiseTest, LogNormalMultiplierIsMeanPreserving) {
  // The documented guarantee: E[exp(eta Z - eta^2/2)] = 1 for every eta.
  // Sample the realized gap multiplier across many (now, page) queries on a
  // long periodic trace (true gap 64, so the multiplier is observable) and
  // check the empirical mean against 1 within Monte Carlo tolerance.
  const int32_t n = 64;
  Instance inst = Instance::Uniform(n, 8);
  std::vector<Request> reqs;
  for (int rep = 0; rep < 40; ++rep) {
    for (PageId p = 0; p < n; ++p) reqs.push_back(Request{p, 1});
  }
  const Trace trace{std::move(inst), std::move(reqs)};
  PredictorPtr base = OraclePredictor::FromTrace(trace);
  for (const double eta : {0.25, 0.5}) {
    PredictorPtr noisy = NoisyOracle(trace, NoiseKind::kLogNormal, eta, 17);
    double sum = 0.0;
    int64_t count = 0;
    for (Time now = 0; now < trace.length() - n; ++now) {
      const PageId p = trace.requests[static_cast<size_t>(now)].page;
      const double true_gap = base->PredictNext(now, p) - static_cast<double>(now);
      const double got_gap = noisy->PredictNext(now, p) - static_cast<double>(now);
      sum += got_gap / true_gap;
      ++count;
    }
    const double mean = sum / static_cast<double>(count);
    EXPECT_NEAR(mean, 1.0, 0.05) << "eta=" << eta;
  }
}

TEST(NoiseTest, SwapEtaOneAnswersWithAnotherPagesPrediction) {
  const Trace trace = RandomTrace(16, 6, 120, 61);
  PredictorPtr base = OraclePredictor::FromTrace(trace);
  PredictorPtr noisy = NoisyOracle(trace, NoiseKind::kSwap, 1.0, 5);
  int64_t swapped = 0;
  int64_t total = 0;
  for (Time now = 0; now < trace.length(); now += 2) {
    for (PageId p = 0; p < trace.instance.num_pages(); ++p) {
      const double got = noisy->PredictNext(now, p);
      // Must equal SOME page's base prediction...
      bool found = false;
      for (PageId q = 0; q < trace.instance.num_pages(); ++q) {
        if (got == base->PredictNext(now, q)) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
      ++total;
      if (got != base->PredictNext(now, p)) ++swapped;
    }
  }
  // ...and at eta = 1 the answer differs from p's own most of the time
  // (collisions where two pages share a next-arrival slot are possible).
  EXPECT_GT(swapped, total / 2);
}

TEST(NoiseTest, StaleFreezesAnswersWithinAnEpoch) {
  const Trace trace = RandomTrace(16, 6, 200, 71);
  PredictorPtr base = OraclePredictor::FromTrace(trace);
  const double epoch = 50.0;
  PredictorPtr noisy = NoisyOracle(trace, NoiseKind::kStale, epoch, 5);
  for (PageId p = 0; p < trace.instance.num_pages(); ++p) {
    // Inside an epoch the answer can only change by the > now clamp.
    const double at_start = base->PredictNext(50, p);
    for (Time now = 50; now < 100; ++now) {
      const double expected =
          std::max(at_start, static_cast<double>(now) + 1.0);
      EXPECT_EQ(noisy->PredictNext(now, p), expected)
          << "p=" << p << " now=" << now;
    }
  }
}

TEST(NoiseTest, RejectsOutOfRangeOptions) {
  const Trace trace = RandomTrace(8, 4, 40, 81);
  auto reject = [&](NoiseKind kind, double eta) {
    NoiseOptions options;
    options.kind = kind;
    options.eta = eta;
    options.seed = 1;
    std::string error;
    PredictorPtr p =
        MakeNoisyPredictor(OraclePredictor::FromTrace(trace), options, &error);
    EXPECT_EQ(p, nullptr) << "kind=" << NoiseKindName(kind) << " eta=" << eta;
    EXPECT_FALSE(error.empty());
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  reject(NoiseKind::kLogNormal, nan);
  reject(NoiseKind::kLogNormal, -0.5);
  reject(NoiseKind::kLogNormal, inf);
  reject(NoiseKind::kSwap, 1.5);
  reject(NoiseKind::kSwap, nan);
  reject(NoiseKind::kStale, -1.0);
  reject(NoiseKind::kStale, 1e16);
  reject(NoiseKind::kNone, 0.1);
}

TEST(NoiseTest, ParseNoiseKindRoundTrips) {
  for (const NoiseKind kind :
       {NoiseKind::kNone, NoiseKind::kLogNormal, NoiseKind::kSwap,
        NoiseKind::kStale}) {
    NoiseKind parsed = NoiseKind::kNone;
    EXPECT_TRUE(predict::ParseNoiseKind(predict::NoiseKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  NoiseKind parsed = NoiseKind::kNone;
  EXPECT_FALSE(predict::ParseNoiseKind("gaussian", &parsed));
  EXPECT_FALSE(predict::ParseNoiseKind("", &parsed));
}

}  // namespace
}  // namespace wmlp
