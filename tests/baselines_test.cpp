#include <gtest/gtest.h>

#include "baselines/fifo.h"
#include "baselines/landlord.h"
#include "baselines/lfu.h"
#include "baselines/lru.h"
#include "baselines/marking.h"
#include "baselines/random_eviction.h"
#include "offline/belady.h"
#include "offline/weighted_opt.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wmlp {
namespace {

// Every baseline must serve every request and never overfill the cache; the
// strict simulator enforces both, so a clean run is itself the assertion.
class BaselineSuite : public ::testing::TestWithParam<int> {};

PolicyPtr MakeBaseline(int which, uint64_t seed) {
  switch (which) {
    case 0: return std::make_unique<LruPolicy>();
    case 1: return std::make_unique<FifoPolicy>();
    case 2: return std::make_unique<LfuPolicy>();
    case 3: return std::make_unique<RandomEvictionPolicy>(seed);
    case 4: return std::make_unique<LandlordPolicy>();
    default: return nullptr;
  }
}

const char* BaselineName(int which) {
  static const char* names[] = {"lru", "fifo", "lfu", "random", "landlord"};
  return names[which];
}

TEST_P(BaselineSuite, FeasibleOnMultiLevelZipf) {
  Instance inst(32, 8, 3,
                MakeWeights(32, 3, WeightModel::kGeometricLevels, 8.0, 1));
  const Trace t = GenZipf(inst, 3000, 0.8, LevelMix::UniformMix(3), 2);
  PolicyPtr p = MakeBaseline(GetParam(), 7);
  const SimResult res = Simulate(t, *p);
  EXPECT_GT(res.misses, 0);
  EXPECT_GT(res.hits, 0) << BaselineName(GetParam());
}

TEST_P(BaselineSuite, FeasibleOnLoop) {
  Instance inst = Instance::Uniform(12, 4);
  const Trace t = GenLoop(inst, 600, 5, LevelMix::AllLowest(1));
  PolicyPtr p = MakeBaseline(GetParam(), 7);
  const SimResult res = Simulate(t, *p);
  EXPECT_EQ(res.hits + res.misses, 600);
}

TEST_P(BaselineSuite, NoEvictionsWhenEverythingFits) {
  Instance inst = Instance::Uniform(4, 4);
  const Trace t = GenZipf(inst, 200, 0.5, LevelMix::AllLowest(1), 3);
  PolicyPtr p = MakeBaseline(GetParam(), 7);
  const SimResult res = Simulate(t, *p);
  EXPECT_EQ(res.evictions, 0);
  EXPECT_LE(res.misses, 4);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineSuite,
                         ::testing::Range(0, 5),
                         [](const auto& suite_info) {
                           return BaselineName(suite_info.param);
                         });

TEST(Lru, EvictsLeastRecentlyUsed) {
  Instance inst = Instance::Uniform(4, 2);
  // 0, 1, 2 -> evicts 0; then 0 -> evicts 1.
  Trace t{inst, {{0, 1}, {1, 1}, {2, 1}, {1, 1}, {0, 1}}};
  LruPolicy p;
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, p, opts);
  std::vector<PageId> evicted;
  for (const auto& ev : log) {
    if (ev.kind == CacheEvent::Kind::kEvict) evicted.push_back(ev.page);
  }
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], 0);
  EXPECT_EQ(evicted[1], 2);  // 1 was touched at t=3, so 2 is LRU at t=4
}

TEST(Lru, LoopAdversaryFaultsEveryTime) {
  // Cyclic loop over k+1 pages: LRU misses every request after warmup.
  Instance inst = Instance::Uniform(5, 4);
  const Trace t = GenLoop(inst, 400, 5, LevelMix::AllLowest(1));
  LruPolicy p;
  const SimResult res = Simulate(t, *&p);
  EXPECT_EQ(res.hits, 0);
}

TEST(Fifo, EvictsInInsertionOrder) {
  Instance inst = Instance::Uniform(4, 2);
  // 0, 1, then touch 0 (hit, no reorder for FIFO), then 2 -> evicts 0.
  Trace t{inst, {{0, 1}, {1, 1}, {0, 1}, {2, 1}}};
  FifoPolicy p;
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, p, opts);
  std::vector<PageId> evicted;
  for (const auto& ev : log) {
    if (ev.kind == CacheEvent::Kind::kEvict) evicted.push_back(ev.page);
  }
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 0);
}

TEST(Lfu, KeepsFrequentPage) {
  Instance inst = Instance::Uniform(4, 2);
  // Page 0 requested 3x, page 1 once; fetching 2 evicts 1 (lower frequency).
  Trace t{inst, {{0, 1}, {0, 1}, {0, 1}, {1, 1}, {2, 1}}};
  LfuPolicy p;
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, p, opts);
  std::vector<PageId> evicted;
  for (const auto& ev : log) {
    if (ev.kind == CacheEvent::Kind::kEvict) evicted.push_back(ev.page);
  }
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1);
}

TEST(Marking, RequiresSingleLevel) {
  Instance inst(2, 1, 2, {{4.0, 1.0}, {4.0, 1.0}});
  Trace t{inst, {{0, 2}}};
  MarkingPolicy p(1);
  EXPECT_DEATH(Simulate(t, p), "single-level");
}

TEST(Marking, CompetitiveOnLoopVsLru) {
  // On the k+1 loop, marking's expected cost per phase is O(log k) while
  // LRU faults every request: marking must be strictly and substantially
  // better.
  Instance inst = Instance::Uniform(9, 8);
  const Trace t = GenLoop(inst, 4000, 9, LevelMix::AllLowest(1));
  LruPolicy lru;
  const SimResult lru_res = Simulate(t, lru);
  RunningStat marking_cost;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    MarkingPolicy mk(seed);
    marking_cost.Add(Simulate(t, mk).eviction_cost);
  }
  EXPECT_LT(marking_cost.mean(), 0.7 * lru_res.eviction_cost);
}

TEST(Landlord, PrefersEvictingCheapPages) {
  Instance inst(3, 2, 1, {{100.0}, {1.0}, {1.0}});
  // Fill with 0 (expensive) and 1; fetch 2 should evict 1, not 0.
  Trace t{inst, {{0, 1}, {1, 1}, {2, 1}}};
  LandlordPolicy p;
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, p, opts);
  std::vector<PageId> evicted;
  for (const auto& ev : log) {
    if (ev.kind == CacheEvent::Kind::kEvict) evicted.push_back(ev.page);
  }
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1);
}

TEST(Landlord, EmpiricallyNearKCompetitive) {
  // Landlord is k-competitive; check the measured ratio stays under k + 1
  // across random weighted traces (loose sanity bound, not the proof).
  Rng seeds(42);
  for (int trial = 0; trial < 5; ++trial) {
    Instance inst(12, 4, 1,
                  MakeWeights(12, 1, WeightModel::kLogUniform, 32.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 500, 0.6, LevelMix::AllLowest(1),
                            seeds.Next());
    const Cost opt = WeightedCachingOpt(t);
    if (opt <= 0.0) continue;
    LandlordPolicy p;
    const SimResult res = Simulate(t, p);
    EXPECT_LE(res.eviction_cost, (inst.cache_size() + 1.0) * opt +
                                     inst.max_weight())
        << "trial " << trial;
  }
}

TEST(RandomEviction, DeterministicGivenSeed) {
  Instance inst = Instance::Uniform(16, 4);
  const Trace t = GenZipf(inst, 800, 0.7, LevelMix::AllLowest(1), 5);
  RandomEvictionPolicy a(99), b(99);
  EXPECT_EQ(Simulate(t, a).eviction_cost, Simulate(t, b).eviction_cost);
}

}  // namespace
}  // namespace wmlp
