// Thread-count determinism of the experiment harness. RunTrials promises
// results "independent of thread schedule" (experiment.h); this pins that
// promise as a regression test: the per-trial SimResults — and a CSV
// rendered from them — must be byte-identical whether the pool has 1, 2,
// or 8 workers. Also pins the ThreadPool reuse contract documented in
// thread_pool.h (Submit after Wait is legal; Wait is a barrier, not a
// shutdown).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"
#include "harness/thread_pool.h"
#include "registry/policy_registry.h"
#include "trace/generators.h"

namespace wmlp {
namespace {

// Renders trial results the way experiment binaries do, precision high
// enough that bitwise-equal doubles are the only way to match.
std::string TrialsCsv(const std::vector<SimResult>& results) {
  Table table({"trial", "eviction_cost", "fetch_cost", "hits", "misses",
               "evictions", "fetches"});
  for (size_t t = 0; t < results.size(); ++t) {
    const SimResult& r = results[t];
    table.AddRow({FmtInt(static_cast<int64_t>(t)), Fmt(r.eviction_cost, 9),
                  Fmt(r.fetch_cost, 9), FmtInt(r.hits), FmtInt(r.misses),
                  FmtInt(r.evictions), FmtInt(r.fetches)});
  }
  std::ostringstream os;
  table.WriteCsv(os);
  return os.str();
}

Trace MakeTrace() {
  Instance inst(40, 10, 2,
                MakeWeights(40, 2, WeightModel::kZipfPages, 8.0, 3));
  return GenZipf(std::move(inst), 2000, 0.9, LevelMix::UniformMix(2), 5);
}

TEST(RunTrialsDeterminismTest, CsvByteIdenticalAcrossThreadCounts) {
  const Trace trace = MakeTrace();
  constexpr int32_t kTrials = 16;
  // randomized exercises per-trial seeding; lru exercises the
  // deterministic path.
  for (const std::string& name : {std::string("randomized"),
                                  std::string("lru")}) {
    const PolicyFactory factory = [&name](uint64_t seed) {
      return MakePolicyByName(name, seed);
    };
    ThreadPool reference_pool(1);
    const std::vector<SimResult> reference =
        RunTrials(reference_pool, trace, factory, kTrials, 99);
    const std::string reference_csv = TrialsCsv(reference);
    for (const int32_t threads : {2, 8}) {
      ThreadPool pool(threads);
      const std::vector<SimResult> results =
          RunTrials(pool, trace, factory, kTrials, 99);
      ASSERT_EQ(results.size(), reference.size());
      for (size_t t = 0; t < results.size(); ++t) {
        EXPECT_EQ(results[t].eviction_cost, reference[t].eviction_cost)
            << name << " trial " << t << " threads " << threads;
        EXPECT_EQ(results[t].hits, reference[t].hits);
        EXPECT_EQ(results[t].evictions, reference[t].evictions);
      }
      EXPECT_EQ(TrialsCsv(results), reference_csv)
          << name << " threads " << threads;
    }
  }
}

TEST(RunTrialsDeterminismTest, PoolReuseAcrossRunTrialsCallsIsStable) {
  const Trace trace = MakeTrace();
  const PolicyFactory factory = [](uint64_t seed) {
    return MakePolicyByName("randomized", seed);
  };
  ThreadPool pool(4);
  const std::vector<SimResult> first = RunTrials(pool, trace, factory, 8, 7);
  // Same pool, same inputs: the second call must not see stale state.
  const std::vector<SimResult> second = RunTrials(pool, trace, factory, 8, 7);
  EXPECT_EQ(TrialsCsv(first), TrialsCsv(second));
}

TEST(ThreadPoolTest, SubmitAfterWaitReusesThePool) {
  ThreadPool pool(4);
  std::atomic<int64_t> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The barrier must not have shut the pool down.
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 150);
  // Wait with nothing in flight returns immediately.
  pool.Wait();
  EXPECT_EQ(counter.load(), 150);
}

TEST(ThreadPoolTest, ParallelForComposesWithPlainSubmit) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  ParallelFor(pool, 64, [&sum](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
  pool.Submit([&sum] { sum.fetch_add(1); });
  pool.Wait();
  ParallelFor(pool, 10, [&sum](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 64 * 63 / 2 + 1 + 45);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int64_t> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait: destruction must still run every queued task.
  }
  EXPECT_EQ(counter.load(), 32);
}

}  // namespace
}  // namespace wmlp
