#include <gtest/gtest.h>

#include <cmath>

#include "core/discretize.h"
#include "core/fractional.h"
#include "lp/paging_lp.h"
#include "offline/weighted_opt.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

FracSchedule RunRecorded(const Trace& trace, const FractionalOptions& opts) {
  FractionalOptions o = opts;
  o.record_schedule = true;
  FractionalMlp frac(o);
  frac.Attach(trace.instance);
  for (Time t = 0; t < trace.length(); ++t) {
    frac.Serve(t, trace.requests[static_cast<size_t>(t)]);
  }
  return frac.schedule();
}

TEST(Fractional, ServesEveryRequest) {
  Instance inst = Instance::Uniform(6, 2);
  const Trace t = GenZipf(inst, 50, 0.7, LevelMix::AllLowest(1), 1);
  FractionalMlp frac;
  frac.Attach(inst);
  for (Time i = 0; i < t.length(); ++i) {
    const Request& r = t.requests[static_cast<size_t>(i)];
    frac.Serve(i, r);
    EXPECT_NEAR(frac.U(r.page, r.level), 0.0, 1e-9);
  }
}

TEST(Fractional, ScheduleIsLpFeasibleSingleLevel) {
  Instance inst(8, 3, 1, MakeWeights(8, 1, WeightModel::kLogUniform, 8.0, 2));
  const Trace t = GenZipf(inst, 120, 0.6, LevelMix::AllLowest(1), 3);
  const FracSchedule sched = RunRecorded(t, {});
  std::string err;
  EXPECT_TRUE(CheckFracScheduleFeasible(t, sched, 1e-6, &err)) << err;
}

TEST(Fractional, ScheduleIsLpFeasibleMultiLevel) {
  Instance inst(6, 2, 3,
                MakeWeights(6, 3, WeightModel::kGeometricLevels, 16.0, 4));
  const Trace t = GenZipf(inst, 150, 0.6, LevelMix::UniformMix(3), 5);
  const FracSchedule sched = RunRecorded(t, {});
  std::string err;
  EXPECT_TRUE(CheckFracScheduleFeasible(t, sched, 1e-6, &err)) << err;
}

TEST(Fractional, LpCostMatchesScheduleCost) {
  Instance inst(6, 2, 2,
                MakeWeights(6, 2, WeightModel::kGeometricLevels, 4.0, 6));
  const Trace t = GenZipf(inst, 80, 0.7, LevelMix::UniformMix(2), 7);
  FractionalOptions o;
  o.record_schedule = true;
  FractionalMlp frac(o);
  frac.Attach(inst);
  for (Time i = 0; i < t.length(); ++i) {
    frac.Serve(i, t.requests[static_cast<size_t>(i)]);
  }
  EXPECT_NEAR(frac.lp_cost(), FracScheduleEvictionCost(t, frac.schedule()),
              1e-6);
}

TEST(Fractional, CompetitiveAgainstLpOptimum) {
  // O(log k) competitiveness, measured: fractional cost within
  // c * log(k+1) * LP-OPT + additive for small instances.
  Rng seeds(1234);
  for (int trial = 0; trial < 3; ++trial) {
    Instance inst(4, 2, 1,
                  MakeWeights(4, 1, WeightModel::kLogUniform, 4.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 14, 0.4, LevelMix::AllLowest(1),
                            seeds.Next());
    const auto lp = SolvePagingLp(t);
    ASSERT_EQ(lp.status, SimplexStatus::kOptimal);
    FractionalMlp frac;
    frac.Attach(inst);
    for (Time i = 0; i < t.length(); ++i) {
      frac.Serve(i, t.requests[static_cast<size_t>(i)]);
    }
    const double c = 8.0 * std::log(inst.cache_size() + 2.0);
    EXPECT_LE(frac.lp_cost(), c * lp.objective + 4.0 * inst.max_weight())
        << "trial " << trial << " frac=" << frac.lp_cost()
        << " lp=" << lp.objective;
  }
}

TEST(Fractional, UMonotoneInLevels) {
  Instance inst(5, 2, 3,
                MakeWeights(5, 3, WeightModel::kGeometricLevels, 16.0, 8));
  const Trace t = GenZipf(inst, 100, 0.8, LevelMix::UniformMix(3), 9);
  FractionalMlp frac;
  frac.Attach(inst);
  for (Time i = 0; i < t.length(); ++i) {
    frac.Serve(i, t.requests[static_cast<size_t>(i)]);
    for (PageId p = 0; p < inst.num_pages(); ++p) {
      for (Level l = 2; l <= 3; ++l) {
        EXPECT_GE(frac.U(p, l - 1), frac.U(p, l) - 1e-9);
      }
    }
  }
}

TEST(Fractional, CapacityRespectedEachStep) {
  Instance inst = Instance::Uniform(10, 3);
  const Trace t = GenZipf(inst, 200, 0.9, LevelMix::AllLowest(1), 10);
  FractionalMlp frac;
  frac.Attach(inst);
  for (Time i = 0; i < t.length(); ++i) {
    frac.Serve(i, t.requests[static_cast<size_t>(i)]);
    double total = 0.0;
    for (PageId p = 0; p < 10; ++p) total += frac.U(p, 1);
    EXPECT_GE(total, 10 - 3 - 1e-6);
  }
}

TEST(Fractional, OnlyRequestedPageDecreases) {
  Instance inst = Instance::Uniform(8, 3);
  const Trace t = GenZipf(inst, 120, 0.7, LevelMix::AllLowest(1), 11);
  FractionalMlp frac;
  frac.Attach(inst);
  std::vector<double> prev(8, 1.0);
  for (Time i = 0; i < t.length(); ++i) {
    const Request& r = t.requests[static_cast<size_t>(i)];
    frac.Serve(i, r);
    for (PageId p = 0; p < 8; ++p) {
      if (p != r.page) {
        EXPECT_GE(frac.U(p, 1), prev[static_cast<size_t>(p)] - 1e-9)
            << "page " << p << " decreased at t=" << i;
      }
      prev[static_cast<size_t>(p)] = frac.U(p, 1);
    }
  }
}

TEST(Fractional, LastChangedCoversAllMovement) {
  Instance inst = Instance::Uniform(8, 3);
  const Trace t = GenZipf(inst, 100, 0.7, LevelMix::AllLowest(1), 12);
  FractionalMlp frac;
  frac.Attach(inst);
  std::vector<double> prev(8, 1.0);
  for (Time i = 0; i < t.length(); ++i) {
    frac.Serve(i, t.requests[static_cast<size_t>(i)]);
    std::vector<bool> changed(8, false);
    for (PageId p : frac.last_changed()) changed[static_cast<size_t>(p)] =
        true;
    for (PageId p = 0; p < 8; ++p) {
      if (std::abs(frac.U(p, 1) - prev[static_cast<size_t>(p)]) > 1e-12) {
        EXPECT_TRUE(changed[static_cast<size_t>(p)])
            << "page " << p << " moved but not reported at t=" << i;
      }
      prev[static_cast<size_t>(p)] = frac.U(p, 1);
    }
  }
}

TEST(Fractional, EtaDefaultsToOneOverK) {
  FractionalMlp frac;
  Instance inst = Instance::Uniform(8, 4);
  frac.Attach(inst);
  EXPECT_NEAR(frac.eta(), 0.25, 1e-12);
  FractionalOptions o;
  o.eta = 0.125;
  FractionalMlp frac2(o);
  frac2.Attach(inst);
  EXPECT_NEAR(frac2.eta(), 0.125, 1e-12);
}

// ---- Discretization (Lemma 4.5) --------------------------------------------

TEST(Discretize, ValuesOnGrid) {
  Instance inst = Instance::Uniform(8, 4);  // delta = 1/16
  DiscretizedFractional disc(std::make_unique<FractionalMlp>());
  disc.Attach(inst);
  EXPECT_NEAR(disc.delta(), 1.0 / 16.0, 1e-12);
  const Trace t = GenZipf(inst, 100, 0.7, LevelMix::AllLowest(1), 13);
  for (Time i = 0; i < t.length(); ++i) {
    disc.Serve(i, t.requests[static_cast<size_t>(i)]);
    for (PageId p = 0; p < 8; ++p) {
      const double u = disc.U(p, 1);
      const double cells = u / disc.delta();
      EXPECT_NEAR(cells, std::round(cells), 1e-6)
          << "u=" << u << " not on grid at t=" << i;
    }
  }
}

TEST(Discretize, PreservesFeasibility) {
  Instance inst(6, 2, 2,
                MakeWeights(6, 2, WeightModel::kGeometricLevels, 4.0, 14));
  const Trace t = GenZipf(inst, 120, 0.6, LevelMix::UniformMix(2), 15);
  DiscretizedFractional disc(std::make_unique<FractionalMlp>());
  disc.Attach(inst);
  FracSchedule sched;
  sched.u.emplace_back(static_cast<size_t>(6 * 2), 1.0);
  for (Time i = 0; i < t.length(); ++i) {
    disc.Serve(i, t.requests[static_cast<size_t>(i)]);
    std::vector<double> snap;
    for (PageId p = 0; p < 6; ++p) {
      for (Level l = 1; l <= 2; ++l) snap.push_back(disc.U(p, l));
    }
    sched.u.push_back(std::move(snap));
  }
  std::string err;
  EXPECT_TRUE(CheckFracScheduleFeasible(t, sched, 1e-6, &err)) << err;
}

TEST(Discretize, CostWithinSmallFactorOfExact) {
  Instance inst = Instance::Uniform(10, 4);
  const Trace t = GenZipf(inst, 400, 0.8, LevelMix::AllLowest(1), 16);
  FractionalMlp exact;
  exact.Attach(inst);
  DiscretizedFractional disc(std::make_unique<FractionalMlp>());
  disc.Attach(inst);
  for (Time i = 0; i < t.length(); ++i) {
    exact.Serve(i, t.requests[static_cast<size_t>(i)]);
    disc.Serve(i, t.requests[static_cast<size_t>(i)]);
  }
  EXPECT_GT(exact.lp_cost(), 0.0);
  // Lemma 4.5: at most a factor 2 (we allow slack + additive).
  EXPECT_LE(disc.lp_cost(), 2.5 * exact.lp_cost() + 10.0);
}

TEST(Discretize, CustomDelta) {
  DiscretizedFractional disc(std::make_unique<FractionalMlp>(), 0.125);
  Instance inst = Instance::Uniform(4, 2);
  disc.Attach(inst);
  EXPECT_NEAR(disc.delta(), 0.125, 1e-12);
}

}  // namespace
}  // namespace wmlp
