// Snapshot reader robustness battery: the parser must reject truncated
// documents, duplicate object keys, and non-finite numerics, and must
// validate the observability-plane sections (timeseries, system) with the
// same accept/reject strictness as the core metric list. Accept cases
// roundtrip through the real exporter (SnapshotToJson) so the reader and
// writer can never drift apart silently.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/export.h"
#include "telemetry/snapshot_reader.h"
#include "telemetry/system_stats.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeseries.h"

namespace wmlp::telemetry {
namespace {

bool Rejects(const std::string& text) {
  SnapshotFile snapshot;
  std::string err;
  const bool ok = ParseSnapshot(text, &snapshot, &err);
  if (ok) return false;
  // Every rejection must come with a diagnosis.
  return !err.empty();
}

// A minimal valid document with optional extra sections spliced in after
// the metrics array.
std::string Doc(const std::string& extra) {
  return std::string("{\n  \"schema\": \"wmlp-telemetry-snapshot-v1\",\n") +
         "  \"telemetry_compiled\": false,\n" +
         "  \"uptime_seconds\": 1.0,\n  \"metrics\": []" + extra + "\n}\n";
}

std::string TimeseriesDoc(const std::string& series,
                          const std::string& header =
                              "\"period_seconds\": 1.0, \"retention\": 4, "
                              "\"ticks\": 2") {
  return Doc(",\n  \"timeseries\": {" + header + ", \"series\": [" + series +
             "]}");
}

const char kGoodSystem[] =
    ",\n  \"system\": {\"valid\": true, \"rss_bytes\": 1024, "
    "\"vm_bytes\": 4096, \"threads\": 2, \"open_fds\": 5, "
    "\"cpu_percent\": 12.5, \"utime_seconds\": 1.5, "
    "\"stime_seconds\": 0.5, \"hw\": {\"available\": true, "
    "\"cycles\": 100, \"instructions\": 250, \"cache_misses\": 7}}";

TEST(SnapshotReaderTest, ExporterRoundtripWithPlaneSections) {
  SamplerSnapshot ts;
  ts.period_seconds = 0.5;
  ts.retention = 8;
  ts.ticks = 3;
  MetricSeries counter;
  counter.name = "roundtrip_total";
  counter.type = MetricType::kCounter;
  counter.times = {0.0, 0.5, 1.0};
  counter.values = {0.0, 10.0, 30.0};
  counter.rates = {20.0, 40.0};
  ts.series.push_back(counter);
  MetricSeries hist;
  hist.name = "roundtrip_hist";
  hist.type = MetricType::kHistogram;
  hist.times = {0.0, 0.5};
  hist.values = {5.0, 25.0};
  hist.rates = {40.0};
  hist.has_quantiles = true;
  hist.window_count = 20;
  hist.p50 = 3.0;
  hist.p99 = 7.5;
  hist.p999 = 7.9;
  ts.series.push_back(hist);

  SystemSample sys;
  sys.valid = true;
  sys.rss_bytes = 8192.0;
  sys.vm_bytes = 65536.0;
  sys.threads = 4;
  sys.open_fds = 12;
  sys.cpu_percent = 42.5;
  sys.utime_seconds = 2.25;
  sys.stime_seconds = 0.75;
  sys.hw.available = true;
  sys.hw.cycles = 123456;
  sys.hw.instructions = 654321;
  sys.hw.cache_misses = 42;

  const std::string json = SnapshotToJson({}, 2.5, &ts, &sys);
  SnapshotFile parsed;
  std::string err;
  ASSERT_TRUE(ParseSnapshot(json, &parsed, &err)) << err;

  ASSERT_TRUE(parsed.has_timeseries);
  EXPECT_DOUBLE_EQ(parsed.timeseries.period_seconds, 0.5);
  EXPECT_EQ(parsed.timeseries.retention, 8);
  EXPECT_EQ(parsed.timeseries.ticks, 3);
  ASSERT_EQ(parsed.timeseries.series.size(), 2u);
  for (const MetricSeries& s : parsed.timeseries.series) {
    if (s.name == "roundtrip_total") {
      EXPECT_EQ(s.type, MetricType::kCounter);
      EXPECT_EQ(s.values, counter.values);
      EXPECT_EQ(s.rates, counter.rates);
      EXPECT_FALSE(s.has_quantiles);
    } else {
      EXPECT_EQ(s.type, MetricType::kHistogram);
      ASSERT_TRUE(s.has_quantiles);
      EXPECT_EQ(s.window_count, 20);
      EXPECT_DOUBLE_EQ(s.p50, 3.0);
      EXPECT_DOUBLE_EQ(s.p999, 7.9);
    }
  }

  ASSERT_TRUE(parsed.has_system);
  EXPECT_TRUE(parsed.system.valid);
  EXPECT_DOUBLE_EQ(parsed.system.rss_bytes, 8192.0);
  EXPECT_EQ(parsed.system.threads, 4);
  EXPECT_EQ(parsed.system.open_fds, 12);
  EXPECT_TRUE(parsed.system.hw.available);
  EXPECT_EQ(parsed.system.hw.cycles, 123456u);
  EXPECT_EQ(parsed.system.hw.cache_misses, 42u);
}

TEST(SnapshotReaderTest, PlaneSectionsAreOptional) {
  SnapshotFile parsed;
  std::string err;
  ASSERT_TRUE(ParseSnapshot(Doc(""), &parsed, &err)) << err;
  EXPECT_FALSE(parsed.has_timeseries);
  EXPECT_FALSE(parsed.has_system);
}

TEST(SnapshotReaderTest, TruncatedDocumentsAreRejected) {
  const std::string full = SnapshotToJson({}, 1.0);
  // Any cut inside the document body must fail loudly, never yield a
  // half-parsed snapshot. (Cutting only the trailing newline stays valid.)
  for (const size_t keep :
       {size_t{1}, full.size() / 4, full.size() / 2, full.size() - 2}) {
    EXPECT_TRUE(Rejects(full.substr(0, keep))) << "kept " << keep;
  }
}

TEST(SnapshotReaderTest, DuplicateObjectKeysAreRejected) {
  JsonValue value;
  std::string err;
  EXPECT_FALSE(ParseJson("{\"a\": 1, \"a\": 2}", &value, &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos);
  // And through the snapshot path.
  EXPECT_TRUE(Rejects(
      "{\"schema\": \"wmlp-telemetry-snapshot-v1\", \"schema\": "
      "\"wmlp-telemetry-snapshot-v1\", \"telemetry_compiled\": false, "
      "\"uptime_seconds\": 0, \"metrics\": []}"));
}

TEST(SnapshotReaderTest, NonFiniteNumericsAreRejected) {
  JsonValue value;
  std::string err;
  EXPECT_FALSE(ParseJson("[1e999]", &value, &err));     // overflows to inf
  EXPECT_FALSE(ParseJson("[NaN]", &value, &err));       // not a JSON token
  EXPECT_FALSE(ParseJson("[Infinity]", &value, &err));  // not a JSON token
  EXPECT_TRUE(Rejects(Doc(",\n  \"bogus\": 1e999")));
}

TEST(SnapshotReaderTest, TimeseriesAcceptBattery) {
  SnapshotFile parsed;
  std::string err;
  // Counter with rates.
  ASSERT_TRUE(ParseSnapshot(
      TimeseriesDoc("{\"name\": \"c\", \"type\": \"counter\", "
                    "\"times\": [0, 1], \"values\": [0, 5], "
                    "\"rates\": [5]}"),
      &parsed, &err))
      << err;
  ASSERT_TRUE(parsed.has_timeseries);
  ASSERT_EQ(parsed.timeseries.series.size(), 1u);
  EXPECT_EQ(parsed.timeseries.series[0].name, "c");

  // Gauge without rates; histogram with the full quantile block; repeated
  // times (a stalled clock) are legal — only going backwards is not.
  ASSERT_TRUE(ParseSnapshot(
      TimeseriesDoc("{\"name\": \"g\", \"type\": \"gauge\", "
                    "\"times\": [0, 0], \"values\": [1.5, 2.5]},\n"
                    "{\"name\": \"h\", \"type\": \"histogram\", "
                    "\"times\": [0, 1], \"values\": [3, 9], "
                    "\"rates\": [6], \"window_count\": 6, \"p50\": 2, "
                    "\"p99\": 4, \"p999\": 4.5}"),
      &parsed, &err))
      << err;
  // Empty series list is fine (sampler registered no metrics yet).
  ASSERT_TRUE(ParseSnapshot(TimeseriesDoc(""), &parsed, &err)) << err;
}

TEST(SnapshotReaderTest, TimeseriesRejectBattery) {
  // times/values length mismatch.
  EXPECT_TRUE(Rejects(
      TimeseriesDoc("{\"name\": \"c\", \"type\": \"counter\", "
                    "\"times\": [0, 1], \"values\": [0]}")));
  // rates must have exactly times - 1 entries when present.
  EXPECT_TRUE(Rejects(
      TimeseriesDoc("{\"name\": \"c\", \"type\": \"counter\", "
                    "\"times\": [0, 1], \"values\": [0, 5], "
                    "\"rates\": [5, 6]}")));
  // Times going backwards.
  EXPECT_TRUE(Rejects(
      TimeseriesDoc("{\"name\": \"c\", \"type\": \"counter\", "
                    "\"times\": [1, 0], \"values\": [0, 5]}")));
  // Quantiles on a non-histogram series.
  EXPECT_TRUE(Rejects(
      TimeseriesDoc("{\"name\": \"c\", \"type\": \"counter\", "
                    "\"times\": [0], \"values\": [0], "
                    "\"window_count\": 1, \"p50\": 1, \"p99\": 1, "
                    "\"p999\": 1}")));
  // Partial quantile block (window_count without p50/p99/p999).
  EXPECT_TRUE(Rejects(
      TimeseriesDoc("{\"name\": \"h\", \"type\": \"histogram\", "
                    "\"times\": [0], \"values\": [0], "
                    "\"window_count\": 1}")));
  // Negative window_count.
  EXPECT_TRUE(Rejects(
      TimeseriesDoc("{\"name\": \"h\", \"type\": \"histogram\", "
                    "\"times\": [0], \"values\": [0], "
                    "\"window_count\": -1, \"p50\": 0, \"p99\": 0, "
                    "\"p999\": 0}")));
  // Unknown series type.
  EXPECT_TRUE(Rejects(
      TimeseriesDoc("{\"name\": \"m\", \"type\": \"meter\", "
                    "\"times\": [0], \"values\": [0]}")));
  // A series longer than the declared retention.
  EXPECT_TRUE(Rejects(TimeseriesDoc(
      "{\"name\": \"c\", \"type\": \"counter\", "
      "\"times\": [0, 1, 2, 3, 4], \"values\": [0, 1, 2, 3, 4]}")));
  // Bad section header fields.
  EXPECT_TRUE(Rejects(TimeseriesDoc(
      "", "\"period_seconds\": 0, \"retention\": 4, \"ticks\": 2")));
  EXPECT_TRUE(Rejects(TimeseriesDoc(
      "", "\"period_seconds\": 1, \"retention\": 1, \"ticks\": 2")));
  EXPECT_TRUE(Rejects(TimeseriesDoc(
      "", "\"period_seconds\": 1, \"retention\": 4, \"ticks\": -1")));
}

TEST(SnapshotReaderTest, SystemAcceptAndRejectBattery) {
  SnapshotFile parsed;
  std::string err;
  ASSERT_TRUE(ParseSnapshot(Doc(kGoodSystem), &parsed, &err)) << err;
  ASSERT_TRUE(parsed.has_system);
  EXPECT_EQ(parsed.system.open_fds, 5);
  EXPECT_EQ(parsed.system.hw.instructions, 250u);

  auto broken = [](const std::string& from, const std::string& to) {
    std::string doc(kGoodSystem);
    const size_t at = doc.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    doc.replace(at, from.size(), to);
    return Doc(doc);
  };
  // Negative resource fields.
  EXPECT_TRUE(Rejects(broken("\"rss_bytes\": 1024", "\"rss_bytes\": -1")));
  EXPECT_TRUE(Rejects(broken("\"threads\": 2", "\"threads\": -2")));
  // open_fds -1 means "unavailable"; anything lower is corrupt.
  EXPECT_TRUE(Rejects(broken("\"open_fds\": 5", "\"open_fds\": -2")));
  // Negative hardware counters.
  EXPECT_TRUE(Rejects(broken("\"cycles\": 100", "\"cycles\": -100")));
  // Missing hw object.
  EXPECT_TRUE(Rejects(broken(
      "\"hw\": {\"available\": true, \"cycles\": 100, "
      "\"instructions\": 250, \"cache_misses\": 7}",
      "\"hw\": 3")));
  // Wrong type for valid.
  EXPECT_TRUE(Rejects(broken("\"valid\": true", "\"valid\": 1")));
}

}  // namespace
}  // namespace wmlp::telemetry
