// Direct unit test of the Algorithm 2 demotion rule (Lemma 4.14, stated
// in the paper with proof deferred to the full version):
//
//   Applying, for i = 1..ell in increasing order, "demote a level-i copy
//   to i+1 (evict at ell) with probability
//   Delta v(p,i) / (v(p,i-1,t) - v(p,i,t-1))" to a cache state sampled
//   from the product distribution D(t-1) yields a state distributed as
//   D(t), where D picks copy i with probability v(p,i-1) - v(p,i).
//
// The test drives ONE page through a scripted sequence of increasing
// v-vectors, starting from an exact sample of D(0), applies the rule per
// step, and compares the empirical final distribution to D(T)'s exact
// marginals — an equality check (chi-square-style tolerance), not just a
// bound.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace wmlp {
namespace {

constexpr int kEll = 3;

// v[0..ell]: v[0] = 1, non-increasing; copy i in {1..ell} has marginal
// v[i-1] - v[i]; "no copy" has probability v[ell].
using V = std::array<double, kEll + 1>;

int SampleD(const V& v, Rng& rng) {
  const double theta = rng.NextDouble();
  // Copy i iff theta in (v[i], v[i-1]]; none iff theta <= v[ell].
  for (int i = 1; i <= kEll; ++i) {
    if (theta > v[i] && theta <= v[i - 1]) return i;
  }
  return 0;  // none
}

// Applies the Algorithm-2 demotion sweep to a cached copy level (0 = none)
// for the move v_prev -> v_now.
int ApplyLocalRule(int level, const V& v_prev, const V& v_now, Rng& rng) {
  if (level == 0) return 0;  // nothing cached; copies are never added here
  for (int i = level; i <= kEll; ++i) {
    if (level != i) continue;
    const double dv = v_now[i] - v_prev[i];
    if (dv <= 0.0) break;
    const double denom = v_now[i - 1] - v_prev[i];
    const double prob = denom > 1e-12 ? std::min(1.0, dv / denom) : 1.0;
    if (!rng.NextBernoulli(prob)) break;
    level = i == kEll ? 0 : i + 1;
  }
  return level;
}

void RunScript(const std::vector<V>& script, int runs, uint64_t seed) {
  std::array<int64_t, kEll + 1> counts{};  // final copy level histogram
  Rng rng(seed);
  for (int r = 0; r < runs; ++r) {
    int level = SampleD(script.front(), rng);
    for (size_t t = 1; t < script.size(); ++t) {
      level = ApplyLocalRule(level, script[t - 1], script[t], rng);
    }
    ++counts[static_cast<size_t>(level)];
  }
  const V& final_v = script.back();
  auto expect_near = [&](int level, double expected) {
    const double empirical =
        static_cast<double>(counts[static_cast<size_t>(level)]) / runs;
    // 4-sigma binomial tolerance.
    const double sigma =
        std::sqrt(std::max(expected * (1.0 - expected), 1e-4) / runs);
    EXPECT_NEAR(empirical, expected, 4.0 * sigma + 0.005)
        << "level " << level;
  };
  expect_near(0, final_v[kEll]);
  for (int i = 1; i <= kEll; ++i) {
    expect_near(i, final_v[i - 1] - final_v[i]);
  }
}

TEST(Lemma414, SingleStepSmallMove) {
  RunScript({{1.0, 0.2, 0.1, 0.05}, {1.0, 0.3, 0.15, 0.08}}, 60000, 1);
}

TEST(Lemma414, SingleStepBigMove) {
  RunScript({{1.0, 0.1, 0.05, 0.0}, {1.0, 0.8, 0.5, 0.3}}, 60000, 2);
}

TEST(Lemma414, ManySmallSteps) {
  // Gradual drift: v rises linearly over 20 steps.
  std::vector<V> script;
  for (int t = 0; t <= 20; ++t) {
    const double f = t / 20.0;
    script.push_back(V{1.0, 0.1 + 0.7 * f, 0.05 + 0.6 * f,
                       0.0 + 0.5 * f});
  }
  RunScript(script, 60000, 3);
}

TEST(Lemma414, BoundaryReachesOne) {
  // v(p, i) saturating at 1 must force demotion past level i.
  RunScript({{1.0, 0.5, 0.2, 0.1}, {1.0, 1.0, 0.6, 0.3}}, 60000, 4);
}

TEST(Lemma414, UnevenLevelMoves) {
  // Different levels move by different amounts; level 3 is stationary in
  // the second step. (Each v must stay non-increasing across levels and
  // non-decreasing over time.)
  RunScript({{1.0, 0.4, 0.3, 0.2},
             {1.0, 0.6, 0.4, 0.25},
             {1.0, 0.9, 0.7, 0.25}},
            60000, 5);
}

}  // namespace
}  // namespace wmlp
