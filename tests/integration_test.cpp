// Cross-module integration: full pipelines the experiments rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/landlord.h"
#include "baselines/lru.h"
#include "core/randomized.h"
#include "core/waterfill.h"
#include "harness/experiment.h"
#include "harness/thread_pool.h"
#include "offline/bounds.h"
#include "offline/multilevel_dp.h"
#include "offline/weighted_opt.h"
#include "setcover/greedy.h"
#include "setcover/reduction.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "util/stats.h"
#include "writeback/rw_reduction.h"
#include "writeback/writeback_policies.h"

namespace wmlp {
namespace {

// E1-style pipeline: all policies on one weighted trace vs exact OPT.
TEST(Integration, WeightedPagingPipeline) {
  Instance inst(48, 8, 1,
                MakeWeights(48, 1, WeightModel::kZipfPages, 16.0, 1));
  const Trace t = GenZipf(inst, 2500, 0.8, LevelMix::AllLowest(1), 2);
  const Cost opt = WeightedCachingOpt(t);
  ASSERT_GT(opt, 0.0);

  LruPolicy lru;
  LandlordPolicy landlord;
  WaterfillPolicy waterfill;
  const double r_lru = Simulate(t, lru).eviction_cost / opt;
  const double r_ll = Simulate(t, landlord).eviction_cost / opt;
  const double r_wf = Simulate(t, waterfill).eviction_cost / opt;
  EXPECT_GE(r_lru, 1.0 - 1e-9);
  EXPECT_GE(r_ll, 1.0 - 1e-9);
  EXPECT_GE(r_wf, 1.0 - 1e-9);

  ThreadPool pool(2);
  const auto trials = RunTrials(
      pool, t, [](uint64_t s) { return MakeRandomizedPolicy(s); }, 4, 7);
  const RatioSummary rnd = SummarizeRatios(trials, opt);
  EXPECT_GE(rnd.ratio.mean(), 1.0 - 1e-9);
  // Sanity ceiling: nothing should be worse than ~3k on a benign zipf trace.
  EXPECT_LE(rnd.ratio.mean(), 3.0 * inst.cache_size());
}

// E2-style: on the adversarial loop, randomized beats deterministic by a
// growing margin.
TEST(Integration, LoopSeparationRandomizedVsDeterministic) {
  const int32_t k = 64;
  Instance inst = Instance::Uniform(k + 1, k);
  const Trace t = GenLoop(inst, 6000, k + 1, LevelMix::AllLowest(1));
  const Cost opt = WeightedCachingOpt(t);
  ASSERT_GT(opt, 0.0);

  LruPolicy lru;
  const double lru_ratio = Simulate(t, lru).eviction_cost / opt;
  RunningStat rnd;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    PolicyPtr p = MakeRandomizedPolicy(seed);
    rnd.Add(Simulate(t, *p).eviction_cost / opt);
  }
  // LRU is Theta(k)-competitive on the loop; the randomized ratio must sit
  // meaningfully below it once 4 ln k << k.
  EXPECT_GT(lru_ratio, 0.5 * k);
  EXPECT_LT(rnd.mean(), 0.8 * lru_ratio);
}

// E3-style: multi-level with exact DP denominators.
TEST(Integration, MultiLevelRatiosAgainstExactDp) {
  Rng seeds(11);
  for (int32_t ell : {1, 2, 3}) {
    Instance inst(5, 2, ell,
                  MakeWeights(5, ell, WeightModel::kGeometricLevels, 8.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 150, 0.7,
                            ell == 1 ? LevelMix::AllLowest(1)
                                     : LevelMix::UniformMix(ell),
                            seeds.Next());
    const Cost opt = MultiLevelOptimal(t);
    if (opt < 1e-9) continue;
    RunningStat rnd;
    for (uint64_t seed = 0; seed < 3; ++seed) {
      PolicyPtr p = MakeRandomizedPolicy(seed);
      rnd.Add(Simulate(t, *p).eviction_cost / opt);
    }
    EXPECT_GE(rnd.mean(), 1.0 - 1e-9) << "ell=" << ell;
    EXPECT_LE(rnd.mean(), 40.0) << "ell=" << ell;
  }
}

// E4-style: writeback-aware policies beat cost-oblivious LRU when the
// writeback premium is large.
TEST(Integration, WritebackAwareBeatsObliviousLru) {
  wb::WbWorkloadOptions opts;
  opts.num_pages = 64;
  opts.cache_size = 8;
  opts.length = 6000;
  opts.write_ratio = 0.3;
  opts.dirty_cost = 64.0;
  opts.clean_cost = 1.0;
  opts.seed = 12;
  const wb::WbTrace t = wb::GenWbZipf(opts);

  wb::WbLru lru;
  wb::WbCleanFirstLru clean_first;
  wb::WbLandlord landlord;
  const auto lru_res = wb::Simulate(t, lru);
  const auto cf_res = wb::Simulate(t, clean_first);
  const auto ll_res = wb::Simulate(t, landlord);
  // Writeback-aware deterministic policies beat the cost-oblivious LRU.
  EXPECT_LT(ll_res.eviction_cost, lru_res.eviction_cost);
  EXPECT_LT(cf_res.eviction_cost, lru_res.eviction_cost);

  // The randomized O(log^2 k) algorithm is worst-case machinery: on this
  // benign zipf workload it need not beat LRU, but it must stay within a
  // small constant of it (k = 8 here, so log^2 k is ~4.3).
  wb::WbFromRwPolicy randomized(MakeRandomizedPolicy(13));
  const auto rnd_res = wb::Simulate(t, randomized);
  EXPECT_LT(rnd_res.eviction_cost, 2.0 * lru_res.eviction_cost);
}

// E5-style: the reduction pipeline end to end with the online set cover
// yardstick.
TEST(Integration, ReductionPipeline) {
  const sc::SetSystem sys = sc::GenRandomSetSystem(10, 6, 0.25, 14);
  std::vector<int32_t> phase(10);
  for (int32_t e = 0; e < 10; ++e) phase[static_cast<size_t>(e)] = e;
  sc::ReductionOptions ropts;
  ropts.repetitions = 3;
  const auto red = sc::BuildRwPagingTrace(sys, {phase}, ropts);

  const int32_t exact_cover = sc::ExactCoverSize(sys, phase);
  ASSERT_GE(exact_cover, 1);

  WaterfillPolicy det;
  std::vector<CacheEvent> log;
  SimOptions sim_opts;
  sim_opts.event_log = &log;
  const SimResult det_res = Simulate(red.trace, det, sim_opts);
  // Lemma 3.2-style yardstick: cover cost scale is c * (w + 1).
  const double w = red.trace.instance.weight(0, 1);
  EXPECT_GT(det_res.eviction_cost, 0.0);
  // The policy's write evictions per phase, interpreted as a cover attempt.
  const auto analysis = sc::AnalyzeEvictions(sys, {phase}, red, log);
  if (analysis.is_valid_cover[0]) {
    EXPECT_GE(static_cast<double>(analysis.evicted_sets[0].size()),
              static_cast<double>(exact_cover));
  }
  (void)w;
}

// Equivalence at the policy level: mapping a writeback trace through the
// reduction and back is the identity.
TEST(Integration, ReductionRoundTripIdentity) {
  wb::WbWorkloadOptions opts;
  opts.num_pages = 10;
  opts.cache_size = 3;
  opts.length = 200;
  opts.seed = 15;
  const wb::WbTrace t = wb::GenWbZipf(opts);
  const wb::WbTrace round = wb::ToWbTrace(wb::ToRwTrace(t));
  EXPECT_EQ(round.instance, t.instance);
  EXPECT_EQ(round.requests, t.requests);
}

// Offline bounds integrate with the harness on a multi-level workload.
TEST(Integration, BoundsPipelineMultiLevel) {
  Instance inst(40, 6, 2,
                MakeWeights(40, 2, WeightModel::kGeometricLevels, 8.0, 16));
  const Trace t = GenZipf(inst, 1200, 0.8, LevelMix::UniformMix(2), 17);
  const OfflineBounds b = ComputeOfflineBounds(t);
  ASSERT_FALSE(b.exact);
  ASSERT_GT(b.lower, 0.0);
  PolicyPtr p = MakeRandomizedPolicy(18);
  const SimResult res = Simulate(t, *p);
  // Online cost must be at least the lower bound (it is a valid solution).
  EXPECT_GE(res.eviction_cost, -1e-9);
  const double ratio_hi = res.eviction_cost / b.lower;
  EXPECT_GT(ratio_hi, 0.0);
}

TEST(Integration, LevelMergePipeline) {
  // Run waterfill through the merge preprocessing on a non-separated
  // instance; costs on the merged instance are within 2x of the original
  // weights by construction.
  Instance inst(6, 2, 3, {{8.0, 7.0, 1.0},
                          {8.0, 7.0, 1.0},
                          {8.0, 7.0, 1.0},
                          {8.0, 7.0, 1.0},
                          {8.0, 7.0, 1.0},
                          {8.0, 7.0, 1.0}});
  ASSERT_FALSE(inst.levels_two_separated());
  const Trace t = GenZipf(inst, 300, 0.7, LevelMix::UniformMix(3), 19);
  const auto merged = inst.MergeLevels();
  const Trace mapped = ApplyLevelMap(t, merged.instance, merged.level_map);
  WaterfillPolicy p;
  const SimResult res = Simulate(mapped, p);
  EXPECT_GT(res.misses, 0);
}

}  // namespace
}  // namespace wmlp
