// Regression tests for parser robustness bugs surfaced by the static
// analysis / fuzzing pass:
//
//   * NaN weights passed validation in all three trace readers because
//     every ordering comparison against NaN is false ("w < 1.0" never
//     fires) — now rejected via std::isfinite.
//   * Hostile headers (giant n * ell, giant declared length) triggered
//     multi-GiB eager allocations before the truncation check could run —
//     now bounded by entry caps and a capped reserve.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "engine/request_source.h"
#include "trace/generators.h"
#include "trace/trace_io.h"
#include "writeback/wb_trace_io.h"

namespace wmlp {
namespace {

std::string WriteTempTrace(const std::string& text) {
  const std::string path =
      ::testing::TempDir() + "/trace_robustness_input.txt";
  std::ofstream ofs(path);
  ofs << text;
  return path;
}

// ---- NaN / non-finite weights --------------------------------------------

TEST(TraceRobustness, RejectsNanWeight) {
  // libstdc++ stream extraction already rejects "nan" (LWG 2381), so this
  // fails as a truncated read; the isfinite guard in the parser is the
  // backstop should extraction ever hand one through.
  std::string err;
  EXPECT_FALSE(
      TraceFromString("wmlp-trace v1\n2 1 1\nnan\n1\n0\n", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(TraceRobustness, RejectsInfiniteWeight) {
  std::string err;
  EXPECT_FALSE(
      TraceFromString("wmlp-trace v1\n2 1 1\ninf\n1\n0\n", &err).has_value());
}

TEST(TraceRobustness, RejectsNanWeightInMatrix) {
  // NaN in a later row, after valid rows, and at a non-first level.
  std::string err;
  EXPECT_FALSE(TraceFromString(
                   "wmlp-trace v1\n2 1 2\n4 2\n4 nan\n0\n", &err)
                   .has_value());
}

TEST(TraceRobustness, StreamingSourceRejectsNanWeight) {
  const std::string path =
      WriteTempTrace("wmlp-trace v1\n2 1 1\nnan\n1\n0\n");
  std::string err;
  EXPECT_EQ(StreamingFileSource::Open(path, &err), nullptr);
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());
}

TEST(TraceRobustness, WritebackRejectsNanWeights) {
  std::string err;
  EXPECT_FALSE(
      wb::WbTraceFromString("wmlp-wbtrace v1\n2 1\nnan 1\n1 1\n0\n", &err)
          .has_value());
  EXPECT_FALSE(
      wb::WbTraceFromString("wmlp-wbtrace v1\n2 1\n2 nan\n1 1\n0\n", &err)
          .has_value());
}

// ---- Hostile headers ------------------------------------------------------

TEST(TraceRobustness, RejectsHugeWeightMatrixHeader) {
  // n * ell = 2^30: would have been an 8 GiB allocation before the guard.
  // Must reject from the header alone, fast, without touching the body.
  std::string err;
  EXPECT_FALSE(TraceFromString("wmlp-trace v1\n1073741824 1 1\n", &err)
                   .has_value());
  EXPECT_NE(err.find("too large"), std::string::npos) << err;
}

TEST(TraceRobustness, StreamingSourceRejectsHugeHeader) {
  const std::string path =
      WriteTempTrace("wmlp-trace v1\n1073741824 1 1\n");
  std::string err;
  EXPECT_EQ(StreamingFileSource::Open(path, &err), nullptr);
  std::remove(path.c_str());
}

TEST(TraceRobustness, WritebackRejectsHugePageCount) {
  std::string err;
  EXPECT_FALSE(
      wb::WbTraceFromString("wmlp-wbtrace v1\n1073741824 1\n", &err)
          .has_value());
}

TEST(TraceRobustness, HugeDeclaredLengthFailsAsTruncation) {
  // Declared length of 2^40 with a one-request body: must fail as a
  // truncation, not die reserving 16 TiB for the request vector.
  std::string err;
  EXPECT_FALSE(TraceFromString(
                   "wmlp-trace v1\n2 1 1\n1\n1\n1099511627776\n0 1\n", &err)
                   .has_value());
}

// ---- Round-trip still intact after the guards -----------------------------

TEST(TraceRobustness, ValidTraceStillRoundTrips) {
  const Instance inst(
      3, 2, 2, MakeWeights(3, 2, WeightModel::kGeometricLevels, 4.0, 1));
  const Trace trace =
      GenZipf(inst, 20, 0.7, LevelMix::UniformMix(2), /*seed=*/2);
  std::string err;
  const auto back = TraceFromString(TraceToString(trace), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->requests.size(), trace.requests.size());
}

}  // namespace
}  // namespace wmlp
