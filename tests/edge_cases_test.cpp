// Boundary and degenerate-input behaviour across modules: each test pins a
// contract the rest of the code relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "baselines/landlord.h"
#include "baselines/lru.h"
#include "core/randomized.h"
#include "core/waterfill.h"
#include "flow/min_cost_flow.h"
#include "lp/simplex.h"
#include "offline/belady.h"
#include "offline/multilevel_dp.h"
#include "offline/weighted_opt.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/trace_io.h"
#include "util/stats.h"

namespace wmlp {
namespace {

// ---- Degenerate cache sizes -------------------------------------------------

TEST(EdgeCases, CacheSizeOneForcesEverything) {
  Instance inst = Instance::Uniform(4, 1);
  const Trace t = GenLoop(inst, 40, 4, LevelMix::AllLowest(1));
  // Every policy has zero choice: all costs equal, OPT included.
  LruPolicy lru;
  LandlordPolicy landlord;
  WaterfillPolicy waterfill;
  const Cost c1 = Simulate(t, lru).eviction_cost;
  const Cost c2 = Simulate(t, landlord).eviction_cost;
  const Cost c3 = Simulate(t, waterfill).eviction_cost;
  const Cost opt = WeightedCachingOpt(t);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c2, c3);
  EXPECT_NEAR(c1, opt, 1e-9);
}

TEST(EdgeCases, CacheHoldsWholeUniverse) {
  Instance inst = Instance::Uniform(6, 6);
  const Trace t = GenZipf(inst, 200, 0.8, LevelMix::AllLowest(1), 1);
  PolicyPtr p = MakeRandomizedPolicy(2);
  const SimResult res = Simulate(t, *p);
  EXPECT_EQ(res.evictions, 0);
  EXPECT_NEAR(WeightedCachingOpt(t), 0.0, 1e-9);
}

TEST(EdgeCases, SingleRequestTrace) {
  Instance inst = Instance::Uniform(3, 2);
  Trace t{inst, {{1, 1}}};
  WaterfillPolicy p;
  const SimResult res = Simulate(t, p);
  EXPECT_EQ(res.misses, 1);
  EXPECT_EQ(res.evictions, 0);
  EXPECT_NEAR(BeladyRun(t).eviction_cost, 0.0, 1e-12);
}

TEST(EdgeCases, RepeatedSameRequest) {
  Instance inst(2, 1, 2, {{8.0, 2.0}, {8.0, 2.0}});
  Trace t{inst, std::vector<Request>(50, Request{0, 2})};
  PolicyPtr p = MakeRandomizedPolicy(3);
  const SimResult res = Simulate(t, *p);
  EXPECT_EQ(res.hits, 49);
  EXPECT_NEAR(MultiLevelOptimal(t), 0.0, 1e-12);
}

// ---- Level boundary cases ---------------------------------------------------

TEST(EdgeCases, AlwaysLevelOneIsWeightedPagingAtTopWeights) {
  // Requests pinned to level 1 make lower copies useless; the optimum
  // equals the ell = 1 optimum at the level-1 weights.
  Instance ml(4, 2, 2, {{8.0, 1.0}, {6.0, 1.0}, {4.0, 1.0}, {2.0, 1.0}});
  Instance single(4, 2, 1, {{8.0}, {6.0}, {4.0}, {2.0}});
  const Trace base = GenZipf(single, 40, 0.6, LevelMix::AllLowest(1), 5);
  Trace ml_trace{ml, base.requests};  // same pages, level 1 everywhere
  EXPECT_NEAR(MultiLevelOptimal(ml_trace), WeightedCachingOpt(base), 1e-9);
}

TEST(EdgeCases, ManyLevelsSinglePage) {
  // One page, ell = 4, k = 1: requests ping between levels; OPT fetches
  // the highest level it will ever need and pays only forced transitions.
  Instance inst(1, 1, 4, {{16.0, 8.0, 4.0, 1.0}});
  Trace t{inst, {{0, 4}, {0, 2}, {0, 4}, {0, 1}, {0, 3}}};
  // Fetch (0,1) at t0 serves everything: cost 0.
  EXPECT_NEAR(MultiLevelOptimal(t), 0.0, 1e-12);
  WaterfillPolicy p;
  const SimResult res = Simulate(t, p);
  EXPECT_GE(res.eviction_cost, 0.0);
}

// ---- Numeric substrates -----------------------------------------------------

TEST(EdgeCases, FlowZeroCapacityArcIgnored) {
  MinCostFlow mcf(2);
  mcf.AddArc(0, 1, 0, -100.0);
  const auto res = mcf.Solve(0, 1);
  EXPECT_EQ(res.flow, 0);
  EXPECT_EQ(res.cost, 0.0);
}

TEST(EdgeCases, FlowSelfParallelArcs) {
  MinCostFlow mcf(2);
  mcf.AddArc(0, 1, 1, 5.0);
  mcf.AddArc(0, 1, 1, 1.0);
  const auto res = mcf.Solve(0, 1, 2);
  EXPECT_EQ(res.flow, 2);
  EXPECT_NEAR(res.cost, 6.0, 1e-9);
}

TEST(EdgeCases, SimplexEmptyObjective) {
  LpProblem lp;
  lp.AddVariable(0.0, 1.0);
  lp.AddConstraint({{0}, {1.0}, ConstraintSense::kGe, 0.5});
  const auto res = SolveLp(lp);
  ASSERT_EQ(res.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(res.objective, 0.0, 1e-9);
  EXPECT_GE(res.x[0], 0.5 - 1e-9);
}

TEST(EdgeCases, SimplexTightEquality) {
  LpProblem lp;
  lp.AddVariable(1.0, 2.0);
  lp.AddConstraint({{0}, {1.0}, ConstraintSense::kEq, 2.0});  // at the UB
  const auto res = SolveLp(lp);
  ASSERT_EQ(res.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(res.x[0], 2.0, 1e-9);
}

TEST(EdgeCases, StatsPercentileSingleElement) {
  EXPECT_EQ(Percentile({42.0}, 0.0), 42.0);
  EXPECT_EQ(Percentile({42.0}, 1.0), 42.0);
  EXPECT_EQ(Percentile({42.0}, 0.5), 42.0);
}

// ---- Trace IO precision -----------------------------------------------------

TEST(EdgeCases, TraceIoPreservesDoublesExactly) {
  Instance inst(2, 1, 1, {{3.141592653589793}, {2.718281828459045}});
  Trace t{inst, {{0, 1}, {1, 1}}};
  const auto back = TraceFromString(TraceToString(t));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->instance.weight(0, 1), 3.141592653589793);
  EXPECT_EQ(back->instance.weight(1, 1), 2.718281828459045);
}

TEST(EdgeCases, EmptyTraceRoundTrips) {
  Instance inst = Instance::Uniform(2, 1);
  Trace t{inst, {}};
  const auto back = TraceFromString(TraceToString(t));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->requests.empty());
}

// ---- Randomized stack corner configs ---------------------------------------

TEST(EdgeCases, RandomizedWithKEqualsNMinusOne) {
  // Tightest possible cache: n = k + 1, so the fractional solution must
  // keep exactly one unit of mass evicted at all times.
  Instance inst = Instance::Uniform(5, 4);
  const Trace t = GenZipf(inst, 300, 0.9, LevelMix::AllLowest(1), 7);
  PolicyPtr p = MakeRandomizedPolicy(8);
  const SimResult res = Simulate(t, *p);
  EXPECT_GT(res.hits + res.misses, 0);
}

TEST(EdgeCases, RandomizedExtremeWeightSpread) {
  Instance inst(8, 3, 1,
                {{1024.0}, {512.0}, {128.0}, {16.0},
                 {4.0}, {2.0}, {1.0}, {1.0}});
  const Trace t = GenZipf(inst, 400, 0.7, LevelMix::AllLowest(1), 9);
  PolicyPtr p = MakeRandomizedPolicy(10);
  const SimResult res = Simulate(t, *p);
  const Cost opt = WeightedCachingOpt(t);
  EXPECT_GE(res.eviction_cost, opt - 1e-9);
}

TEST(EdgeCases, BetaOneDegradesGracefully) {
  // beta = 1: the rounding tracks the fractional solution exactly and
  // leans on resets; must stay feasible everywhere.
  Instance inst = Instance::Uniform(12, 4);
  const Trace t = GenLoop(inst, 600, 5, LevelMix::AllLowest(1));
  RandomizedOptions opts;
  opts.beta = 1.0;
  PolicyPtr p = MakeRandomizedPolicy(11, opts);
  const SimResult res = Simulate(t, *p);
  EXPECT_GT(res.misses, 0);
}

}  // namespace
}  // namespace wmlp
