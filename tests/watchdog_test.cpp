// Cost-ratio watchdog tests: the forced-fetch lower bound must never
// exceed the offline optimum (soundness), the realized-cost ratio must be
// >= 1 whenever the bound is positive (every algorithm pays at least the
// bound), the per-request accounting must follow the v(p) = w(p, deepest
// requested level) rule exactly, and the health registry must count
// threshold crossings and flip the verdict.
//
// The health registry is a process-wide leaky singleton (same discipline
// as telemetry::Registry), so every test that reads it calls ResetForTest
// first and never asserts on slots it did not register.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/cost_watchdog.h"
#include "engine/engine.h"
#include "engine/request_source.h"
#include "offline/bounds.h"
#include "registry/policy_registry.h"
#include "telemetry/health.h"
#include "trace/generators.h"

namespace wmlp {
namespace {

Trace SmallZipf(int32_t n, int32_t k, int32_t ell, int64_t length,
                uint64_t seed) {
  Instance inst(n, k, ell,
                MakeWeights(n, ell, WeightModel::kZipfPages, 8.0, 3));
  return GenZipf(std::move(inst), length, 0.9, LevelMix::UniformMix(ell),
                 seed);
}

// Runs `policy_name` over the trace with a watchdog attached and returns
// the watchdog (by value via its observable totals).
struct WatchdogRun {
  double alg_cost = 0.0;
  double lower_bound = 0.0;
  double ratio_upper = 0.0;
  double engine_eviction_cost = 0.0;
};

WatchdogRun RunWithWatchdog(const Trace& trace,
                            const std::string& policy_name) {
  health::CostRatioHealth::Get().ResetForTest();
  CostRatioWatchdog dog(trace.instance, WatchdogOptions{});
  PolicyPtr policy = MakePolicyByName(policy_name, 7);
  TraceSource source(trace);
  EngineOptions eopts;
  eopts.observer = &dog;
  Engine engine(source, *policy, eopts);
  const SimResult result = engine.Run();
  dog.Publish();
  WatchdogRun out;
  out.alg_cost = dog.alg_cost();
  out.lower_bound = dog.lower_bound();
  out.ratio_upper = dog.ratio_upper();
  out.engine_eviction_cost = result.eviction_cost;
  return out;
}

TEST(WatchdogTest, AccountingFollowsDeepestRequestedLevel) {
  // w(p, 1) >= w(p, 2); level 1 is the expensive one, deeper levels are
  // cheaper, so a deeper request can only lower v(p).
  Instance inst(2, 1, 2, {{8.0, 2.0}, {6.0, 3.0}});
  health::CostRatioHealth::Get().ResetForTest();
  CostRatioWatchdog dog(inst, WatchdogOptions{});

  // First request to page 0 at level 1: v(0) = 8. sum = 8, max = 8,
  // LB = max(0, 8 - 1 * 8) = 0.
  dog.OnStep(0, Request{0, 1}, false);
  EXPECT_DOUBLE_EQ(dog.lower_bound(), 0.0);

  // Page 1 at level 1: v(1) = 6. sum = 14, max = 8, LB = 6.
  dog.OnStep(1, Request{1, 1}, false);
  EXPECT_DOUBLE_EQ(dog.lower_bound(), 6.0);

  // Page 0 again at level 2: v(0) drops to w(0, 2) = 2, sum = 8; the max
  // relaxation keeps max = 8 (monotone, only loosens), so LB = 0.
  dog.OnStep(2, Request{0, 2}, false);
  EXPECT_DOUBLE_EQ(dog.lower_bound(), 0.0);
  EXPECT_EQ(dog.requests_seen(), 3);

  // Evictions accumulate the realized cost; ratio stays 0 while LB is 0.
  dog.OnEvict(2, 0, 1, 8.0);
  EXPECT_DOUBLE_EQ(dog.alg_cost(), 8.0);
  EXPECT_DOUBLE_EQ(dog.ratio_upper(), 0.0);
}

TEST(WatchdogTest, LowerBoundNeverExceedsOfflineOptimum) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const Trace trace = SmallZipf(12, 4, 2, 400, seed);
    const WatchdogRun run = RunWithWatchdog(trace, "waterfill");
    const OfflineBounds bounds = ComputeOfflineBounds(trace);
    // LB <= OPT <= bounds.upper: a violation means the watchdog would
    // report a ratio that is not actually an upper bound.
    EXPECT_LE(run.lower_bound, bounds.upper + 1e-6)
        << "seed " << seed << ": watchdog bound above offline OPT";
  }
}

TEST(WatchdogTest, RatioIsAtLeastOneWheneverBoundIsPositive) {
  // The bound charges costs every algorithm must pay, so the realized
  // eviction cost of ANY policy is >= LB and the ratio is >= 1.
  for (const char* policy : {"waterfill", "lru", "landlord"}) {
    const Trace trace = SmallZipf(24, 6, 2, 800, 11);
    const WatchdogRun run = RunWithWatchdog(trace, policy);
    EXPECT_DOUBLE_EQ(run.alg_cost, run.engine_eviction_cost)
        << policy << ": watchdog disagrees with the engine's accounting";
    if (run.lower_bound > 0.0) {
      EXPECT_GE(run.ratio_upper, 1.0 - 1e-12) << policy;
      EXPECT_GE(run.alg_cost, run.lower_bound - 1e-9) << policy;
    }
  }
}

TEST(WatchdogTest, PublishFeedsHealthRegistry) {
  const Trace trace = SmallZipf(12, 4, 2, 400, 5);
  const WatchdogRun run = RunWithWatchdog(trace, "waterfill");
  const health::HealthSnapshot snap =
      health::CostRatioHealth::Get().Snapshot();
  EXPECT_EQ(snap.sources, 1);
  EXPECT_DOUBLE_EQ(snap.alg_cost, run.alg_cost);
  EXPECT_DOUBLE_EQ(snap.lower_bound, run.lower_bound);
  // Monitor-only (threshold 0): always healthy, never a crossing.
  EXPECT_TRUE(snap.healthy);
  EXPECT_EQ(snap.crossings, 0);
}

TEST(HealthRegistryTest, ThresholdCrossingFlipsVerdictAndCounts) {
  health::CostRatioHealth& health = health::CostRatioHealth::Get();
  health.ResetForTest();
  const int slot = health.RegisterSource();
  health.SetThreshold(2.0);

  health.Update(slot, 10.0, 10.0);  // ratio 1: healthy
  EXPECT_TRUE(health.Snapshot().healthy);
  EXPECT_EQ(health.Snapshot().crossings, 0);

  health.Update(slot, 30.0, 10.0);  // ratio 3: crosses
  {
    const health::HealthSnapshot snap = health.Snapshot();
    EXPECT_FALSE(snap.healthy);
    EXPECT_EQ(snap.crossings, 1);
    EXPECT_DOUBLE_EQ(snap.ratio_upper, 3.0);
  }

  health.Update(slot, 15.0, 10.0);  // back below: healthy again
  EXPECT_TRUE(health.Snapshot().healthy);
  EXPECT_EQ(health.Snapshot().crossings, 1);

  health.Update(slot, 25.0, 10.0);  // second rising edge
  EXPECT_EQ(health.Snapshot().crossings, 2);
}

TEST(HealthRegistryTest, SlotsSumAcrossSources) {
  health::CostRatioHealth& health = health::CostRatioHealth::Get();
  health.ResetForTest();
  const int a = health.RegisterSource();
  const int b = health.RegisterSource();
  health.Update(a, 6.0, 2.0);
  health.Update(b, 4.0, 3.0);
  const health::HealthSnapshot snap = health.Snapshot();
  EXPECT_EQ(snap.sources, 2);
  EXPECT_DOUBLE_EQ(snap.alg_cost, 10.0);
  EXPECT_DOUBLE_EQ(snap.lower_bound, 5.0);
  EXPECT_DOUBLE_EQ(snap.ratio_upper, 2.0);
}

TEST(HealthRegistryTest, ZeroLowerBoundIsAlwaysHealthy) {
  health::CostRatioHealth& health = health::CostRatioHealth::Get();
  health.ResetForTest();
  const int slot = health.RegisterSource();
  health.SetThreshold(1.5);
  // No positive bound yet: the ratio is unknowable, so no verdict.
  health.Update(slot, 100.0, 0.0);
  const health::HealthSnapshot snap = health.Snapshot();
  EXPECT_TRUE(snap.healthy);
  EXPECT_DOUBLE_EQ(snap.ratio_upper, 0.0);
}

}  // namespace
}  // namespace wmlp
