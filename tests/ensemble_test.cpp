#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "setcover/reduction.h"
#include "setcover/set_system.h"
#include "trace/trace.h"

namespace wmlp {
namespace {

using sc::GenPhaseEnsemble;
using sc::SetSystem;

SetSystem System() { return sc::GenRandomSetSystem(20, 8, 0.2, 7); }

TEST(PhaseEnsemble, ShapesAndBounds) {
  const SetSystem sys = System();
  const auto phases = GenPhaseEnsemble(sys, 4, 10, 6, 1);
  ASSERT_EQ(phases.size(), 10u);
  for (const auto& phase : phases) {
    ASSERT_EQ(phase.size(), 6u);
    std::set<int32_t> uniq(phase.begin(), phase.end());
    EXPECT_EQ(uniq.size(), 6u);  // subsets: no duplicate elements
    for (int32_t e : phase) {
      EXPECT_GE(e, 0);
      EXPECT_LT(e, sys.num_elements());
    }
  }
}

TEST(PhaseEnsemble, PhasesDrawnFromCandidates) {
  const SetSystem sys = System();
  const auto phases = GenPhaseEnsemble(sys, 3, 20, 5, 2);
  // With 3 candidates and 20 phases, at most 3 distinct sequences appear
  // and at least one repeats.
  std::set<std::vector<int32_t>> distinct(phases.begin(), phases.end());
  EXPECT_LE(distinct.size(), 3u);
  EXPECT_LT(distinct.size(), phases.size());
}

TEST(PhaseEnsemble, DeterministicInSeed) {
  const SetSystem sys = System();
  const auto a = GenPhaseEnsemble(sys, 4, 8, 6, 5);
  const auto b = GenPhaseEnsemble(sys, 4, 8, 6, 5);
  EXPECT_EQ(a, b);
}

TEST(PhaseEnsemble, FullUniverseSequences) {
  const SetSystem sys = System();
  const auto phases =
      GenPhaseEnsemble(sys, 2, 4, sys.num_elements(), 6);
  for (const auto& phase : phases) {
    std::set<int32_t> uniq(phase.begin(), phase.end());
    EXPECT_EQ(static_cast<int32_t>(uniq.size()), sys.num_elements());
  }
}

TEST(PhaseEnsemble, BuildsValidReductionTraces) {
  const SetSystem sys = System();
  const auto phases = GenPhaseEnsemble(sys, 3, 5, 8, 9);
  sc::ReductionOptions opts;
  opts.repetitions = 2;
  const auto red = sc::BuildRwPagingTrace(sys, phases, opts);
  EXPECT_EQ(red.phase_ranges.size(), 5u);
  std::string err;
  EXPECT_TRUE(ValidateTrace(red.trace, &err)) << err;
}

}  // namespace
}  // namespace wmlp
