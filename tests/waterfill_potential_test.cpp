// Executes the Theorem 4.1 potential analysis step by step:
//
//   Phi = sum_{p in ON} [ k * v(p, i_p) * (w(p,i_p) - f(p,i_p))
//                         + f(p, i_p) ]
//
// with v the offline optimum's prefix indicator at the online copy's
// level, f the water levels, and the paper's cost convention (online
// eviction costs w, online fetch earns w/2; offline pays w per eviction).
// Claim (1): Delta(ON) + Delta(Phi) <= k * Delta(OFF) at every time step
// (details deferred to the paper's full version — checked here by
// machine on random 2-separated instances).
#include <gtest/gtest.h>

#include "core/waterfill.h"
#include "offline/multilevel_dp.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

double OffV(uint64_t state, PageId q, Level j, int32_t ell) {
  const Level lvl = OptimalSchedule::LevelOf(state, q, ell);
  if (lvl == 0) return 1.0;
  return j < lvl ? 1.0 : 0.0;
}

double OffStepCost(const Instance& inst, uint64_t from, uint64_t to) {
  double c = 0.0;
  for (PageId q = 0; q < inst.num_pages(); ++q) {
    const Level d0 = OptimalSchedule::LevelOf(from, q, inst.num_levels());
    const Level d1 = OptimalSchedule::LevelOf(to, q, inst.num_levels());
    if (d0 != 0 && d1 != d0) c += inst.weight(q, d0);
  }
  return c;
}

double Potential(const Instance& inst, const WaterfillPolicy& policy,
                 const CacheState& cache, uint64_t off_state) {
  const double k = static_cast<double>(inst.cache_size());
  double phi = 0.0;
  for (PageId p : cache.pages()) {
    const Level ip = cache.level_of(p);
    const double w = inst.weight(p, ip);
    const double f = policy.WaterLevel(p, ip);
    phi += k * OffV(off_state, p, ip, inst.num_levels()) * (w - f) + f;
  }
  return phi;
}

void VerifyWaterfillPotential(const Trace& trace) {
  const Instance& inst = trace.instance;
  const OptimalSchedule opt = MultiLevelOptimalSchedule(trace);
  ASSERT_EQ(opt.states.size(), trace.requests.size());

  WaterfillPolicy policy;
  CacheState cache(inst);
  CacheOps ops(inst, cache);
  policy.Attach(inst);

  const double k = static_cast<double>(inst.cache_size());
  uint64_t off_prev = 0;
  double phi_prev = 0.0;
  double on_prev = 0.0;  // cumulative: evictions - fetches / 2
  for (size_t t = 0; t < trace.requests.size(); ++t) {
    ops.set_time(static_cast<Time>(t));
    policy.Serve(static_cast<Time>(t), trace.requests[t], ops);
    ASSERT_TRUE(cache.serves(trace.requests[t]));
    ASSERT_LE(cache.size(), inst.cache_size());

    const uint64_t off_now = opt.states[t];
    const double on_now = ops.eviction_cost() - 0.5 * ops.fetch_cost();
    const double phi_now = Potential(inst, policy, cache, off_now);
    const double d_on = on_now - on_prev;
    const double d_off = OffStepCost(inst, off_prev, off_now);
    EXPECT_LE(d_on + (phi_now - phi_prev), k * d_off + 1e-6)
        << "step " << t << ": dOn=" << d_on
        << " dPhi=" << (phi_now - phi_prev) << " k*dOff=" << k * d_off;
    off_prev = off_now;
    phi_prev = phi_now;
    on_prev = on_now;
  }
  // Telescoping: (evictions - fetches/2) <= k * OPT, so the true eviction
  // cost is at most 2k * OPT + (weights of the final cache contents).
  EXPECT_LE(on_prev, k * opt.cost + 1e-6);
  EXPECT_LE(ops.eviction_cost(),
            2.0 * k * opt.cost + 2.0 * k * inst.max_weight());
}

TEST(WaterfillPotential, SingleLevelUniform) {
  Instance inst = Instance::Uniform(5, 2);
  const Trace t = GenZipf(inst, 80, 0.6, LevelMix::AllLowest(1), 1);
  VerifyWaterfillPotential(t);
}

TEST(WaterfillPotential, SingleLevelWeighted) {
  Rng seeds(41);
  for (int trial = 0; trial < 4; ++trial) {
    Instance inst(5, 2, 1,
                  MakeWeights(5, 1, WeightModel::kLogUniform, 8.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 60, 0.6, LevelMix::AllLowest(1),
                            seeds.Next());
    VerifyWaterfillPotential(t);
  }
}

TEST(WaterfillPotential, TwoLevelsSeparated) {
  Rng seeds(42);
  for (int trial = 0; trial < 4; ++trial) {
    Instance inst(4, 2, 2,
                  MakeWeights(4, 2, WeightModel::kGeometricLevels, 4.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 50, 0.6, LevelMix::UniformMix(2),
                            seeds.Next());
    VerifyWaterfillPotential(t);
  }
}

TEST(WaterfillPotential, AdversarialLoop) {
  Instance inst = Instance::Uniform(4, 3);
  const Trace t = GenLoop(inst, 60, 4, LevelMix::AllLowest(1));
  VerifyWaterfillPotential(t);
}

TEST(WaterfillPotential, WaterLevelAccessorBounds) {
  Instance inst(4, 2, 1, {{8.0}, {4.0}, {2.0}, {1.0}});
  const Trace t = GenZipf(inst, 100, 0.7, LevelMix::AllLowest(1), 5);
  WaterfillPolicy policy;
  CacheState cache(inst);
  CacheOps ops(inst, cache);
  policy.Attach(inst);
  for (Time i = 0; i < t.length(); ++i) {
    policy.Serve(i, t.requests[static_cast<size_t>(i)], ops);
    for (PageId p : cache.pages()) {
      const Level lvl = cache.level_of(p);
      const double f = policy.WaterLevel(p, lvl);
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, inst.weight(p, lvl));
    }
  }
}

}  // namespace
}  // namespace wmlp
