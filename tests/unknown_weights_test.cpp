// Convergence and equivalence battery for the unknown-weights policy
// (docs/ARCHITECTURE.md §14): Landlord over learned weight estimates.
//
//   * On uniform-weight instances the estimates equal the truth from the
//     start, so the policy must be bitwise identical to Landlord.
//   * On stationary Zipf traces with spread weights the per-request cost
//     gap vs known-weight Landlord shrinks across trace prefixes as
//     evictions reveal weights (20-seed battery; the gap is averaged over
//     seeds per prefix and must be non-increasing within a small slack,
//     with the final prefix strictly better than the first).
//   * Estimates are always lower bounds on the truth and exact once the
//     copy's eviction was paid.
//   * Bitwise Engine batch equivalence (the combiner's own battery is in
//     prediction_policy_test; registry-wide coverage is in engine_test).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "baselines/landlord.h"
#include "engine/engine.h"
#include "engine/request_source.h"
#include "predict/unknown_weights.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

using predict::UnknownWeightsPolicy;

Trace ZipfTrace(int32_t n, int32_t k, int32_t ell, int64_t length,
                double ratio, uint64_t seed) {
  Instance inst(n, k, ell, MakeWeights(n, ell, WeightModel::kLogUniform,
                                       ratio, DeriveSeed(seed, 0)));
  return GenZipf(std::move(inst), length,
                 0.9, ell == 1 ? LevelMix::AllLowest(1) : LevelMix::UniformMix(ell),
                 DeriveSeed(seed, 1));
}

Cost RunPolicy(const Trace& trace, Policy& policy, int32_t batch = 1) {
  TraceSource source(trace);
  EngineOptions options;
  options.batch = batch;
  Engine engine(source, policy, options);
  return engine.Run().eviction_cost;
}

TEST(UnknownWeightsTest, BitwiseIdenticalToLandlordOnUniformWeights) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Instance inst = Instance::Uniform(40, 10, 3.0);
    const Trace trace = GenZipf(std::move(inst), 3000, 0.8,
                                LevelMix::AllLowest(1), DeriveSeed(seed, 9));
    UnknownWeightsPolicy unknown;
    LandlordPolicy landlord;
    EXPECT_EQ(RunPolicy(trace, unknown), RunPolicy(trace, landlord));
  }
}

TEST(UnknownWeightsTest, CostGapVsLandlordShrinksAcrossPrefixes) {
  // 20-seed battery on stationary Zipf: per-request cost gap at prefix
  // lengths 500/1500/4500, averaged over seeds, must be non-increasing
  // (10% slack per step) and strictly smaller at the end than the start.
  const std::vector<int64_t> prefixes = {500, 1500, 4500};
  std::vector<double> mean_gap(prefixes.size(), 0.0);
  const int kSeeds = 20;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Trace full = ZipfTrace(48, 12, 1, prefixes.back(), 32.0, seed);
    for (size_t i = 0; i < prefixes.size(); ++i) {
      Trace prefix{full.instance,
                   std::vector<Request>(
                       full.requests.begin(),
                       full.requests.begin() +
                           static_cast<ptrdiff_t>(prefixes[i]))};
      UnknownWeightsPolicy unknown;
      LandlordPolicy landlord;
      const Cost cu = RunPolicy(prefix, unknown);
      const Cost cl = RunPolicy(prefix, landlord);
      mean_gap[i] += (cu - cl) / static_cast<double>(prefixes[i]);
    }
  }
  for (double& g : mean_gap) g /= kSeeds;
  for (size_t i = 1; i < mean_gap.size(); ++i) {
    EXPECT_LE(mean_gap[i], mean_gap[i - 1] + 0.1 * std::abs(mean_gap[i - 1]) +
                               1e-12)
        << "prefix " << prefixes[i];
  }
  EXPECT_LT(mean_gap.back(), mean_gap.front());
  // The exploration premium exists at the start (the policy pays to learn).
  EXPECT_GT(mean_gap.front(), 0.0);
}

TEST(UnknownWeightsTest, EstimatesAreLowerBoundsAndExactOnceObserved) {
  for (uint64_t seed = 5; seed <= 8; ++seed) {
    const Trace trace = ZipfTrace(24, 6, 3, 2000, 16.0, seed);
    UnknownWeightsPolicy policy;
    RunPolicy(trace, policy);
    const Instance& inst = trace.instance;
    int64_t observed = 0;
    for (PageId p = 0; p < inst.num_pages(); ++p) {
      for (Level i = 1; i <= inst.num_levels(); ++i) {
        EXPECT_GE(inst.weight(p, i), policy.EstimatedWeight(p, i));
        EXPECT_GE(policy.EstimatedWeight(p, i), inst.min_weight());
        if (policy.Observed(p, i)) {
          EXPECT_EQ(policy.EstimatedWeight(p, i), inst.weight(p, i));
          ++observed;
        }
      }
    }
    // A 6-slot cache under 24 zipf pages evicts constantly: exploration
    // must have revealed a solid share of the weight matrix.
    EXPECT_GT(observed, inst.num_pages() / 2);
  }
}

TEST(UnknownWeightsTest, ExplorationPrefersUnobservedPages) {
  // k = 2, three pages. Page 0 is heavy (weight 64), pages 1..2 cheap.
  // After page 0's weight is revealed by one eviction, the policy must
  // stop evicting it when any cheap never-observed alternative is cached.
  Instance inst(3, 2, 1, {{64.0}, {1.0}, {1.0}});
  std::vector<Request> reqs;
  // Fill with 0, 1; then request 2 -> victim is either (both credits are
  // estimates at min_weight): the scan picks page 0 first. Its weight is
  // now revealed.
  reqs.push_back({0, 1});
  reqs.push_back({1, 1});
  reqs.push_back({2, 1});
  // Re-request 0 (evicts a cheap page), then alternate 1/2: page 0 must
  // survive every later eviction because its revealed credit dominates.
  reqs.push_back({0, 1});
  for (int i = 0; i < 6; ++i) reqs.push_back({1 + (i % 2), 1});
  const Trace trace{inst, reqs};

  UnknownWeightsPolicy policy;
  policy.Attach(inst);
  CacheState state(inst);
  CacheOps ops(inst, state);
  for (size_t j = 0; j < trace.requests.size(); ++j) {
    ops.set_time(static_cast<Time>(j));
    policy.Serve(static_cast<Time>(j), trace.requests[j], ops);
    ASSERT_TRUE(state.serves(trace.requests[j]));
    if (j >= 3) {
      EXPECT_TRUE(policy.Observed(0, 1));
      EXPECT_TRUE(state.contains(0)) << "heavy page evicted at step " << j;
    }
  }
  // Exactly one eviction of page 0, never again: total cost 64 + cheap.
  EXPECT_LE(ops.eviction_cost(), 64.0 + 8.0);
}

TEST(UnknownWeightsTest, EngineBatchEquivalenceIsBitwise) {
  for (uint64_t seed = 31; seed <= 33; ++seed) {
    const Trace trace = ZipfTrace(32, 8, 2, 2500, 16.0, seed);
    UnknownWeightsPolicy single;
    const Cost base = RunPolicy(trace, single, 1);
    for (const int32_t batch : {2, 7, 64, 4096}) {
      UnknownWeightsPolicy batched;
      EXPECT_EQ(RunPolicy(trace, batched, batch), base)
          << "seed=" << seed << " batch=" << batch;
    }
  }
}

TEST(UnknownWeightsTest, DyadicWeightScalingIsExactMultiLevel) {
  const Trace trace = ZipfTrace(24, 6, 3, 1500, 8.0, 41);
  UnknownWeightsPolicy policy;
  const Cost base = RunPolicy(trace, policy);
  for (const double c : {2.0, 4.0, 1024.0}) {
    std::vector<std::vector<Cost>> weights;
    for (PageId p = 0; p < trace.instance.num_pages(); ++p) {
      std::vector<Cost> row;
      for (Level i = 1; i <= trace.instance.num_levels(); ++i) {
        row.push_back(c * trace.instance.weight(p, i));
      }
      weights.push_back(std::move(row));
    }
    const Trace scaled{Instance(trace.instance.num_pages(),
                                trace.instance.cache_size(),
                                trace.instance.num_levels(),
                                std::move(weights)),
                       trace.requests};
    UnknownWeightsPolicy scaled_policy;
    EXPECT_EQ(RunPolicy(scaled, scaled_policy), c * base);
  }
}

}  // namespace
}  // namespace wmlp
