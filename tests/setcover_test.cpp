#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/landlord.h"
#include "core/waterfill.h"
#include "setcover/greedy.h"
#include "setcover/online_setcover.h"
#include "setcover/reduction.h"
#include "setcover/set_system.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace wmlp {
namespace {

using sc::SetSystem;

SetSystem TinySystem() {
  // U = {0..4}; S0 = {0,1}, S1 = {1,2,3}, S2 = {3,4}, S3 = {0,2,4}.
  return SetSystem(5, {{0, 1}, {1, 2, 3}, {3, 4}, {0, 2, 4}});
}

TEST(SetSystem, MembershipAndCovering) {
  const SetSystem sys = TinySystem();
  EXPECT_EQ(sys.num_elements(), 5);
  EXPECT_EQ(sys.num_sets(), 4);
  EXPECT_TRUE(sys.Contains(1, 2));
  EXPECT_FALSE(sys.Contains(0, 2));
  EXPECT_EQ(sys.covering(0).size(), 2u);  // S0 and S3
}

TEST(SetSystem, IsCover) {
  const SetSystem sys = TinySystem();
  EXPECT_TRUE(sys.IsCover({1, 3}, {0, 1, 2, 3, 4}));
  EXPECT_FALSE(sys.IsCover({0, 2}, {0, 1, 2, 3, 4}));  // misses 2
  EXPECT_TRUE(sys.IsCover({0}, {0, 1}));
}

TEST(SetSystem, UncoverableElementFatal) {
  EXPECT_DEATH(SetSystem(3, {{0, 1}}), "uncoverable");
}

TEST(SetSystem, RandomSystemsAlwaysFeasible) {
  Rng seeds(5);
  for (int trial = 0; trial < 10; ++trial) {
    const SetSystem sys =
        sc::GenRandomSetSystem(20, 8, 0.1, seeds.Next());
    std::vector<int32_t> all(20);
    std::iota(all.begin(), all.end(), 0);
    std::vector<int32_t> everything(static_cast<size_t>(sys.num_sets()));
    std::iota(everything.begin(), everything.end(), 0);
    EXPECT_TRUE(sys.IsCover(everything, all));
  }
}

TEST(SetSystem, BlockSystemHasKnownOptimum) {
  const SetSystem sys = sc::GenBlockSystem(4, 3, 6, 9);
  std::vector<int32_t> all(12);
  std::iota(all.begin(), all.end(), 0);
  EXPECT_EQ(sc::ExactCoverSize(sys, all), 4);
}

TEST(SetSystem, BitVectorSystemStructure) {
  for (int32_t d = 2; d <= 4; ++d) {
    const SetSystem sys = sc::GenBitVectorSystem(d);
    const int32_t n = (1 << d) - 1;
    EXPECT_EQ(sys.num_elements(), n);
    EXPECT_EQ(sys.num_sets(), n);
    // Every element lies in exactly 2^{d-1} sets.
    for (int32_t e = 0; e < n; ++e) {
      EXPECT_EQ(static_cast<int32_t>(sys.covering(e).size()), 1 << (d - 1))
          << "d=" << d << " e=" << e;
    }
  }
}

TEST(SetSystem, BitVectorExactCoverIsDimension) {
  for (int32_t d = 2; d <= 4; ++d) {
    const SetSystem sys = sc::GenBitVectorSystem(d);
    std::vector<int32_t> all(static_cast<size_t>(sys.num_elements()));
    std::iota(all.begin(), all.end(), 0);
    EXPECT_EQ(sc::ExactCoverSize(sys, all), d) << "d=" << d;
  }
}

TEST(SetSystem, BitVectorFractionalGap) {
  const SetSystem sys = sc::GenBitVectorSystem(4);
  std::vector<int32_t> all(15);
  std::iota(all.begin(), all.end(), 0);
  const double frac = sc::FractionalCoverValue(sys, all);
  // x_S = 2^{1-d} covers fractionally: value (2^d - 1)/2^{d-1} = 15/8.
  EXPECT_NEAR(frac, 15.0 / 8.0, 1e-6);
  EXPECT_GT(static_cast<double>(sc::ExactCoverSize(sys, all)) / frac, 2.0);
}

TEST(Greedy, CoversAndIsReasonable) {
  const SetSystem sys = TinySystem();
  std::vector<int32_t> all = {0, 1, 2, 3, 4};
  const auto cover = sc::GreedyCover(sys, all);
  EXPECT_TRUE(sys.IsCover(cover, all));
  EXPECT_LE(cover.size(), 3u);
}

TEST(Greedy, ExactCoverSizeHandExamples) {
  const SetSystem sys = TinySystem();
  EXPECT_EQ(sc::ExactCoverSize(sys, {0, 1, 2, 3, 4}), 2);  // {S1, S3}
  EXPECT_EQ(sc::ExactCoverSize(sys, {0}), 1);
  EXPECT_EQ(sc::ExactCoverSize(sys, {}), 0);
}

TEST(Greedy, GreedyWithinLnNOfExact) {
  Rng seeds(6);
  for (int trial = 0; trial < 8; ++trial) {
    const SetSystem sys = sc::GenRandomSetSystem(16, 10, 0.2, seeds.Next());
    std::vector<int32_t> all(16);
    std::iota(all.begin(), all.end(), 0);
    const auto greedy = sc::GreedyCover(sys, all);
    const int32_t exact = sc::ExactCoverSize(sys, all);
    const double bound = (std::log(16.0) + 1.0) * exact;
    EXPECT_LE(static_cast<double>(greedy.size()), bound) << "trial " << trial;
  }
}

TEST(Greedy, FractionalLowerBoundsIntegral) {
  Rng seeds(7);
  for (int trial = 0; trial < 5; ++trial) {
    const SetSystem sys = sc::GenRandomSetSystem(12, 8, 0.25, seeds.Next());
    std::vector<int32_t> all(12);
    std::iota(all.begin(), all.end(), 0);
    const double frac = sc::FractionalCoverValue(sys, all);
    const int32_t exact = sc::ExactCoverSize(sys, all);
    EXPECT_LE(frac, exact + 1e-6) << "trial " << trial;
    EXPECT_GT(frac, 0.0);
  }
}

TEST(OnlineSetCover, AlwaysCovers) {
  Rng seeds(8);
  for (int trial = 0; trial < 5; ++trial) {
    const SetSystem sys = sc::GenRandomSetSystem(24, 10, 0.15, seeds.Next());
    sc::OnlineSetCover online(sys, seeds.Next());
    std::vector<int32_t> arrived;
    for (int32_t e = 0; e < sys.num_elements(); ++e) {
      online.ProcessElement(e);
      arrived.push_back(e);
      std::vector<int32_t> chosen;
      for (int32_t s = 0; s < sys.num_sets(); ++s) {
        if (online.chosen()[static_cast<size_t>(s)]) chosen.push_back(s);
      }
      ASSERT_TRUE(sys.IsCover(chosen, arrived))
          << "uncovered after element " << e;
    }
  }
}

TEST(OnlineSetCover, FractionalValueBoundedAndCoverSane) {
  const SetSystem sys = sc::GenRandomSetSystem(20, 12, 0.15, 99);
  sc::OnlineSetCover online(sys, 100);
  for (int32_t e = 0; e < sys.num_elements(); ++e) online.ProcessElement(e);
  std::vector<int32_t> all(20);
  std::iota(all.begin(), all.end(), 0);
  const int32_t exact = sc::ExactCoverSize(sys, all);
  // O(log m log n) competitiveness, loose numeric version.
  const double bound =
      4.0 * (std::log(12.0) + 1.0) * (std::log(20.0) + 1.0) *
          static_cast<double>(exact) + 4.0;
  EXPECT_LE(static_cast<double>(online.cover_size()), bound);
  EXPECT_GE(online.fractional_value(), 0.9);  // must fractionally cover
}

TEST(OnlineSetCover, RepeatedElementsAddNothing) {
  const SetSystem sys = TinySystem();
  sc::OnlineSetCover online(sys, 3);
  online.ProcessElement(0);
  const int32_t size_after_first = online.cover_size();
  const auto added = online.ProcessElement(0);
  EXPECT_TRUE(added.empty());
  EXPECT_EQ(online.cover_size(), size_after_first);
}

// ---- Reduction (Section 3) -------------------------------------------------

TEST(Reduction, TraceStructure) {
  const SetSystem sys = TinySystem();
  sc::ReductionOptions opts;
  opts.repetitions = 2;
  const auto red = sc::BuildRwPagingTrace(sys, {{0, 3}}, opts);
  EXPECT_TRUE(ValidateTrace(red.trace));
  EXPECT_EQ(red.trace.instance.cache_size(), sys.num_sets());
  EXPECT_EQ(red.trace.instance.num_pages(),
            sys.num_sets() + sys.num_elements());
  EXPECT_EQ(red.phase_ranges.size(), 1u);
  // Phase layout: m writes + per element (reps * (1 + |complement|) + m)
  // + m writes.
  const auto [begin, end] = red.phase_ranges[0];
  EXPECT_EQ(begin, 0);
  EXPECT_EQ(end, red.trace.length());
  // First m requests are writes for the sets.
  for (int32_t s = 0; s < sys.num_sets(); ++s) {
    EXPECT_EQ(red.trace.requests[static_cast<size_t>(s)],
              (Request{sc::SetPage(s), 1}));
  }
  // Last m requests are writes again.
  for (int32_t s = 0; s < sys.num_sets(); ++s) {
    EXPECT_EQ(red.trace.requests[red.trace.requests.size() -
                                 static_cast<size_t>(sys.num_sets() - s)],
              (Request{sc::SetPage(s), 1}));
  }
}

TEST(Reduction, WeightsAreWriteHeavy) {
  const SetSystem sys = TinySystem();
  const auto red = sc::BuildRwPagingTrace(sys, {{0}}, {});
  const Instance& inst = red.trace.instance;
  EXPECT_EQ(inst.num_levels(), 2);
  EXPECT_GE(inst.weight(0, 1), static_cast<Cost>(sys.num_elements()));
  EXPECT_EQ(inst.weight(0, 2), 1.0);
}

TEST(Reduction, SoundnessDisjunction) {
  // Lemma 3.3 in measurable form: per phase, EITHER the write pages a
  // policy evicts form a valid cover of the phase's elements, OR every
  // repetition of some rho(e) forces at least one eviction (cost >= 1
  // each), so the phase cost is at least `repetitions`.
  const SetSystem sys = sc::GenRandomSetSystem(8, 5, 0.3, 17);
  std::vector<std::vector<int32_t>> phases = {{0, 1, 2, 3, 4, 5, 6, 7}};
  sc::ReductionOptions opts;
  opts.repetitions = 4;
  const auto red = sc::BuildRwPagingTrace(sys, phases, opts);

  WaterfillPolicy policy;
  std::vector<CacheEvent> log;
  SimOptions sim_opts;
  sim_opts.event_log = &log;
  const SimResult res = Simulate(red.trace, policy, sim_opts);
  const auto analysis = sc::AnalyzeEvictions(sys, phases, red, log);
  ASSERT_EQ(analysis.is_valid_cover.size(), 1u);
  if (!analysis.is_valid_cover[0]) {
    EXPECT_GE(res.eviction_cost, static_cast<double>(opts.repetitions));
  } else {
    EXPECT_FALSE(analysis.evicted_sets[0].empty());
  }
}

TEST(Reduction, CompletenessCostBound) {
  // Lemma 3.2: there is a solution of cost <= c(w + 1) + 2t; hence OPT on
  // the reduced trace is at most that. Verified against the DP on a tiny
  // system.
  const SetSystem sys = SetSystem(2, {{0}, {1}, {0, 1}});
  std::vector<std::vector<int32_t>> phases = {{0, 1}};
  sc::ReductionOptions opts;
  opts.repetitions = 2;
  opts.write_weight = 4.0;
  const auto red = sc::BuildRwPagingTrace(sys, phases, opts);
  // Optimal cover: {S2} of size 1 => bound 1 * (4 + 1) + 2 * 2 = 9, plus
  // the initial fill is free (eviction-cost convention).
  // A feasible policy: Landlord.
  LandlordPolicy p;
  const SimResult res = Simulate(red.trace, p);
  EXPECT_GT(res.eviction_cost, 0.0);
  // Loose sanity: some solution achieves the Lemma 3.2 bound; Landlord may
  // exceed it but not absurdly (k-competitive with k = 3).
  EXPECT_LE(res.eviction_cost, 3.0 * 9.0 + 3.0 * 4.0);
}

TEST(Reduction, MultiPhaseRangesDisjoint) {
  const SetSystem sys = TinySystem();
  const auto red =
      sc::BuildRwPagingTrace(sys, {{0, 1}, {2, 3}, {4}}, {});
  ASSERT_EQ(red.phase_ranges.size(), 3u);
  for (size_t i = 1; i < red.phase_ranges.size(); ++i) {
    EXPECT_EQ(red.phase_ranges[i].first, red.phase_ranges[i - 1].second);
  }
  EXPECT_EQ(red.phase_ranges.back().second, red.trace.length());
}

}  // namespace
}  // namespace wmlp
