#include <gtest/gtest.h>

#include "sim/cache_state.h"
#include "sim/simulator.h"

namespace wmlp {
namespace {

Instance TwoLevel(int32_t n = 4, int32_t k = 2) {
  return Instance(n, k, 2,
                  std::vector<std::vector<Cost>>(
                      static_cast<size_t>(n), std::vector<Cost>{10.0, 3.0}));
}

TEST(CacheState, InsertRemoveBasics) {
  const Instance inst = TwoLevel();
  CacheState c(inst);
  EXPECT_EQ(c.size(), 0);
  EXPECT_EQ(c.capacity(), 2);
  c.Insert(1, 2);
  EXPECT_TRUE(c.contains(1));
  EXPECT_EQ(c.level_of(1), 2);
  EXPECT_EQ(c.size(), 1);
  EXPECT_EQ(c.Remove(1), 2);
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.size(), 0);
}

TEST(CacheState, ServesRespectsLevels) {
  const Instance inst = TwoLevel();
  CacheState c(inst);
  c.Insert(0, 2);
  EXPECT_TRUE(c.serves(Request{0, 2}));
  EXPECT_FALSE(c.serves(Request{0, 1}));  // level-2 copy can't serve level 1
  c.Remove(0);
  c.Insert(0, 1);
  EXPECT_TRUE(c.serves(Request{0, 1}));
  EXPECT_TRUE(c.serves(Request{0, 2}));  // level-1 copy serves everything
}

TEST(CacheState, OneCopyRuleFatal) {
  const Instance inst = TwoLevel();
  CacheState c(inst);
  c.Insert(0, 1);
  EXPECT_DEATH(c.Insert(0, 2), "already cached");
}

TEST(CacheState, RemoveAbsentFatal) {
  const Instance inst = TwoLevel();
  CacheState c(inst);
  EXPECT_DEATH(c.Remove(3), "not cached");
}

TEST(CacheState, PagesListTracksContents) {
  const Instance inst = TwoLevel(8, 8);
  CacheState c(inst);
  c.Insert(1, 1);
  c.Insert(5, 2);
  c.Insert(3, 1);
  c.Remove(5);
  ASSERT_EQ(c.pages().size(), 2u);
  EXPECT_TRUE((c.pages()[0] == 1 && c.pages()[1] == 3) ||
              (c.pages()[0] == 3 && c.pages()[1] == 1));
}

// A policy that keeps the most recent pages, fetching requested levels.
class TestLru final : public Policy {
 public:
  void Attach(const Instance&) override { recency_.clear(); }
  void Serve(Time, const Request& r, CacheOps& ops) override {
    std::erase(recency_, r.page);
    recency_.push_back(r.page);
    if (!ops.cache().serves(r)) {
      if (ops.cache().contains(r.page)) {
        ops.Replace(r.page, r.level);
      } else {
        if (ops.cache().size() == ops.cache().capacity()) {
          for (PageId q : recency_) {
            if (q != r.page && ops.cache().contains(q)) {
              ops.Evict(q);
              break;
            }
          }
        }
        ops.Fetch(r.page, r.level);
      }
    }
  }
  std::string name() const override { return "test-lru"; }

 private:
  std::vector<PageId> recency_;
};

// A policy that never fetches: must trip the strict check.
class NoopPolicy final : public Policy {
 public:
  void Attach(const Instance&) override {}
  void Serve(Time, const Request&, CacheOps&) override {}
  std::string name() const override { return "noop"; }
};

// A policy that overfills the cache.
class GreedyHoarder final : public Policy {
 public:
  void Attach(const Instance&) override {}
  void Serve(Time, const Request& r, CacheOps& ops) override {
    if (!ops.cache().contains(r.page)) ops.Fetch(r.page, r.level);
  }
  std::string name() const override { return "hoarder"; }
};

TEST(Simulator, CountsHitsAndMisses) {
  Trace t{TwoLevel(), {{0, 2}, {1, 2}, {0, 2}, {2, 2}, {0, 2}}};
  TestLru policy;
  const SimResult res = Simulate(t, policy);
  EXPECT_EQ(res.misses, 3);
  EXPECT_EQ(res.hits, 2);
}

TEST(Simulator, EvictionCostUsesEvictedCopyWeight) {
  // k=1: request (0,1), then (1,2): evicting (0,1) costs 10.
  Instance inst = TwoLevel(4, 1);
  Trace t{inst, {{0, 1}, {1, 2}}};
  TestLru policy;
  const SimResult res = Simulate(t, policy);
  EXPECT_EQ(res.evictions, 1);
  EXPECT_NEAR(res.eviction_cost, 10.0, 1e-12);
  EXPECT_NEAR(res.fetch_cost, 10.0 + 3.0, 1e-12);
}

TEST(Simulator, ForcedReplacementChargesOldCopy) {
  // (0,2) cached; request (0,1) forces replacing the level-2 copy (cost 3).
  Instance inst = TwoLevel(4, 2);
  Trace t{inst, {{0, 2}, {0, 1}}};
  TestLru policy;
  const SimResult res = Simulate(t, policy);
  EXPECT_EQ(res.misses, 2);
  EXPECT_NEAR(res.eviction_cost, 3.0, 1e-12);
}

TEST(Simulator, StrictUnservedIsFatal) {
  Trace t{TwoLevel(), {{0, 2}}};
  NoopPolicy policy;
  EXPECT_DEATH(Simulate(t, policy), "unserved");
}

TEST(Simulator, NonStrictObservesViolationsWithoutAborting) {
  // strict = false turns contract violations into observable outcomes
  // (misses pile up, no abort) — for measuring how broken a policy is
  // rather than crashing on it.
  Trace t{TwoLevel(), {{0, 2}, {1, 2}, {0, 2}}};
  NoopPolicy policy;
  SimOptions opts;
  opts.strict = false;
  const SimResult res = Simulate(t, policy, opts);
  EXPECT_EQ(res.misses, 3);
  EXPECT_EQ(res.fetches, 0);
}

TEST(Simulator, StrictOverfillIsFatal) {
  Instance inst = TwoLevel(4, 2);
  Trace t{inst, {{0, 2}, {1, 2}, {2, 2}}};
  GreedyHoarder policy;
  EXPECT_DEATH(Simulate(t, policy), "overfilled");
}

TEST(Simulator, EventLogRecordsActions) {
  Instance inst = TwoLevel(4, 1);
  Trace t{inst, {{0, 2}, {1, 2}}};
  TestLru policy;
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, policy, opts);
  ASSERT_EQ(log.size(), 3u);  // fetch 0, evict 0, fetch 1
  EXPECT_EQ(log[0].kind, CacheEvent::Kind::kFetch);
  EXPECT_EQ(log[0].page, 0);
  EXPECT_EQ(log[0].t, 0);
  EXPECT_EQ(log[1].kind, CacheEvent::Kind::kEvict);
  EXPECT_EQ(log[1].page, 0);
  EXPECT_EQ(log[1].t, 1);
  EXPECT_EQ(log[2].kind, CacheEvent::Kind::kFetch);
  EXPECT_EQ(log[2].page, 1);
}

TEST(Simulator, HitRate) {
  SimResult r;
  r.hits = 3;
  r.misses = 1;
  EXPECT_NEAR(r.hit_rate(), 0.75, 1e-12);
  SimResult empty;
  EXPECT_EQ(empty.hit_rate(), 0.0);
}

}  // namespace
}  // namespace wmlp
