#include <gtest/gtest.h>

#include <limits>

#include "lp/lp_problem.h"
#include "lp/paging_lp.h"
#include "lp/simplex.h"
#include "offline/weighted_opt.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Simplex, SimpleMinimization) {
  // min x + y s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0.
  LpProblem lp;
  lp.AddVariable(1.0);
  lp.AddVariable(1.0);
  lp.AddConstraint({{0, 1}, {1.0, 2.0}, ConstraintSense::kGe, 4.0});
  lp.AddConstraint({{0, 1}, {3.0, 1.0}, ConstraintSense::kGe, 6.0});
  const auto res = SolveLp(lp);
  ASSERT_EQ(res.status, SimplexStatus::kOptimal);
  // Optimum at intersection: x = 8/5, y = 6/5, obj = 14/5.
  EXPECT_NEAR(res.objective, 14.0 / 5.0, 1e-8);
  EXPECT_NEAR(res.x[0], 8.0 / 5.0, 1e-8);
  EXPECT_NEAR(res.x[1], 6.0 / 5.0, 1e-8);
}

TEST(Simplex, MaximizationViaNegation) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> min -(3x + 2y).
  LpProblem lp;
  lp.AddVariable(-3.0);
  lp.AddVariable(-2.0);
  lp.AddConstraint({{0, 1}, {1.0, 1.0}, ConstraintSense::kLe, 4.0});
  lp.AddConstraint({{0, 1}, {1.0, 3.0}, ConstraintSense::kLe, 6.0});
  const auto res = SolveLp(lp);
  ASSERT_EQ(res.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(res.objective, -12.0, 1e-8);  // x=4, y=0
}

TEST(Simplex, EqualityConstraints) {
  // min 2x + 3y s.t. x + y = 10, x - y = 2.
  LpProblem lp;
  lp.AddVariable(2.0);
  lp.AddVariable(3.0);
  lp.AddConstraint({{0, 1}, {1.0, 1.0}, ConstraintSense::kEq, 10.0});
  lp.AddConstraint({{0, 1}, {1.0, -1.0}, ConstraintSense::kEq, 2.0});
  const auto res = SolveLp(lp);
  ASSERT_EQ(res.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(res.x[0], 6.0, 1e-8);
  EXPECT_NEAR(res.x[1], 4.0, 1e-8);
  EXPECT_NEAR(res.objective, 24.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem lp;
  lp.AddVariable(1.0);
  lp.AddConstraint({{0}, {1.0}, ConstraintSense::kGe, 5.0});
  lp.AddConstraint({{0}, {1.0}, ConstraintSense::kLe, 3.0});
  EXPECT_EQ(SolveLp(lp).status, SimplexStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem lp;
  lp.AddVariable(-1.0);  // min -x with x unbounded above
  lp.AddConstraint({{0}, {1.0}, ConstraintSense::kGe, 0.0});
  EXPECT_EQ(SolveLp(lp).status, SimplexStatus::kUnbounded);
}

TEST(Simplex, UpperBoundsRespected) {
  LpProblem lp;
  lp.AddVariable(-1.0, 2.5);  // min -x, x <= 2.5
  const auto res = SolveLp(lp);
  ASSERT_EQ(res.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(res.x[0], 2.5, 1e-8);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x >= 2 written as -x <= -2.
  LpProblem lp;
  lp.AddVariable(1.0);
  lp.AddConstraint({{0}, {-1.0}, ConstraintSense::kLe, -2.0});
  const auto res = SolveLp(lp);
  ASSERT_EQ(res.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(res.x[0], 2.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple constraints active at the optimum (classic degeneracy).
  LpProblem lp;
  lp.AddVariable(-1.0);
  lp.AddVariable(-1.0);
  lp.AddConstraint({{0, 1}, {1.0, 1.0}, ConstraintSense::kLe, 1.0});
  lp.AddConstraint({{0, 1}, {1.0, 1.0}, ConstraintSense::kLe, 1.0});
  lp.AddConstraint({{0}, {1.0}, ConstraintSense::kLe, 1.0});
  lp.AddConstraint({{1}, {1.0}, ConstraintSense::kLe, 1.0});
  const auto res = SolveLp(lp);
  ASSERT_EQ(res.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(res.objective, -1.0, 1e-8);
}

TEST(Simplex, RandomLpsFeasibleSolutionsAreValid) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    LpProblem lp;
    const int nv = 3 + static_cast<int>(rng.NextBounded(4));
    for (int j = 0; j < nv; ++j) {
      lp.AddVariable(rng.NextDouble() * 4.0 - 1.0, 5.0);
    }
    const int nc = 2 + static_cast<int>(rng.NextBounded(5));
    for (int i = 0; i < nc; ++i) {
      LpConstraint c;
      for (int j = 0; j < nv; ++j) {
        c.index.push_back(j);
        c.coef.push_back(rng.NextDouble() * 2.0 - 0.5);
      }
      c.sense = ConstraintSense::kGe;
      c.rhs = rng.NextDouble() * 2.0;
      lp.AddConstraint(std::move(c));
    }
    const auto res = SolveLp(lp);
    if (res.status == SimplexStatus::kOptimal) {
      EXPECT_LT(lp.MaxViolation(res.x), 1e-6);
      EXPECT_NEAR(lp.Evaluate(res.x), res.objective, 1e-6);
    }
  }
}

TEST(LpProblem, EvaluateAndViolation) {
  LpProblem lp;
  lp.AddVariable(2.0, 1.0);
  lp.AddVariable(1.0);
  lp.AddConstraint({{0, 1}, {1.0, 1.0}, ConstraintSense::kGe, 1.0});
  std::vector<double> x = {0.5, 0.25};
  EXPECT_NEAR(lp.Evaluate(x), 1.25, 1e-12);
  EXPECT_NEAR(lp.MaxViolation(x), 0.25, 1e-12);
  x[1] = 0.5;
  EXPECT_NEAR(lp.MaxViolation(x), 0.0, 1e-12);
}

// ---- Paging LP -------------------------------------------------------------

Trace TinyWeightedTrace() {
  Instance inst(3, 1, 1, {{4.0}, {2.0}, {1.0}});
  return Trace{inst, {{0, 1}, {1, 1}, {0, 1}, {2, 1}, {0, 1}}};
}

TEST(PagingLp, MatchesFlowOptOnWeightedPaging) {
  // For ell = 1 the LP is integral; its optimum equals the flow OPT.
  const Trace t = TinyWeightedTrace();
  const auto res = SolvePagingLp(t);
  ASSERT_EQ(res.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(res.objective, WeightedCachingOpt(t), 1e-6);
}

TEST(PagingLp, RandomWeightedTracesMatchFlow) {
  Rng rng(123);
  for (int trial = 0; trial < 5; ++trial) {
    Instance inst(4, 2, 1,
                  MakeWeights(4, 1, WeightModel::kLogUniform, 8.0,
                              1000 + static_cast<uint64_t>(trial)));
    const Trace t = GenZipf(inst, 12, 0.6, LevelMix::AllLowest(1),
                            2000 + static_cast<uint64_t>(trial));
    const auto res = SolvePagingLp(t);
    ASSERT_EQ(res.status, SimplexStatus::kOptimal);
    EXPECT_LE(res.objective, WeightedCachingOpt(t) + 1e-6);
  }
}

TEST(PagingLp, MultiLevelLpLowerBoundsIntegralCost) {
  Instance inst(3, 2, 2, {{8.0, 2.0}, {8.0, 2.0}, {8.0, 2.0}});
  Trace t{inst, {{0, 1}, {1, 2}, {2, 1}, {0, 2}, {1, 1}, {2, 2}}};
  const auto res = SolvePagingLp(t);
  ASSERT_EQ(res.status, SimplexStatus::kOptimal);
  EXPECT_GE(res.objective, -1e-9);
}

TEST(FracSchedule, FeasibilityChecker) {
  Instance inst(2, 1, 1, {{1.0}, {1.0}});
  Trace t{inst, {{0, 1}, {1, 1}}};
  FracSchedule ok;
  ok.u = {{1.0, 1.0}, {0.0, 1.0}, {1.0, 0.0}};
  EXPECT_TRUE(CheckFracScheduleFeasible(t, ok));
  // Capacity violation: both pages fully cached with k = 1.
  FracSchedule bad = ok;
  bad.u[2] = {0.0, 0.0};
  std::string err;
  EXPECT_FALSE(CheckFracScheduleFeasible(t, bad, 1e-6, &err));
  EXPECT_NE(err.find("capacity"), std::string::npos);
  // Unserved request.
  FracSchedule unserved = ok;
  unserved.u[1] = {0.5, 0.5};
  EXPECT_FALSE(CheckFracScheduleFeasible(t, unserved, 1e-6, &err));
}

TEST(FracSchedule, EvictionCost) {
  Instance inst(2, 1, 1, {{4.0}, {2.0}});
  Trace t{inst, {{0, 1}, {1, 1}}};
  FracSchedule s;
  s.u = {{1.0, 1.0}, {0.0, 1.0}, {0.5, 0.0}};
  // Page 0 rises by 0.5 (cost 2.0); page 1 only falls.
  EXPECT_NEAR(FracScheduleEvictionCost(t, s), 2.0, 1e-12);
}

}  // namespace
}  // namespace wmlp
