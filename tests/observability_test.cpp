// Observability plane integration tests: the embedded HTTP scrape
// endpoint (routes, producers, lifecycle, bind failures), the
// system/process collector, and the TelemetrySession wiring that ties
// sampler + collector + endpoint together. Everything binds 127.0.0.1
// with ephemeral ports, so tests cannot collide with each other or with
// anything else on the host.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "telemetry/export.h"
#include "telemetry/health.h"
#include "telemetry/http_server.h"
#include "telemetry/snapshot_reader.h"
#include "telemetry/system_stats.h"
#include "telemetry/telemetry.h"

namespace wmlp::telemetry {
namespace {

TEST(HttpServerTest, ServesMetricsVarsAndHealthz) {
  health::CostRatioHealth::Get().ResetForTest();
  Registry::Get().GetCounter("obstest_scrape_total").Inc();
  MetricsHttpServer server;
  std::string err;
  ASSERT_TRUE(server.Start(0, &err)) << err;
  ASSERT_GT(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/metrics", &status,
                      &body, &err))
      << err;
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("obstest_scrape_total"), std::string::npos);

  ASSERT_TRUE(
      HttpGet("127.0.0.1", server.port(), "/vars", &status, &body, &err))
      << err;
  EXPECT_EQ(status, 200);
  SnapshotFile snapshot;
  ASSERT_TRUE(ParseSnapshot(body, &snapshot, &err)) << err;
  EXPECT_EQ(snapshot.schema, "wmlp-telemetry-snapshot-v1");

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/healthz", &status,
                      &body, &err))
      << err;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body.rfind("ok", 0), 0u);

  // The endpoint counts its own scrapes (always-on metric: it lives in
  // src/telemetry/, outside the kEnabled gate).
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/metrics", &status,
                      &body, &err))
      << err;
  EXPECT_NE(body.find("wmlp_http_requests_total"), std::string::npos);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/nope", &status, &body,
                      &err))
      << err;
  EXPECT_EQ(status, 404);
  server.Stop();
  server.Stop();  // idempotent
}

TEST(HttpServerTest, ProducersOverrideDefaults) {
  MetricsHttpServer server;
  server.set_vars_producer([] { return std::string("custom-vars"); });
  server.set_health_producer([](std::string* detail) {
    *detail = "ratio too high";
    return false;
  });
  std::string err;
  ASSERT_TRUE(server.Start(0, &err)) << err;

  int status = 0;
  std::string body;
  ASSERT_TRUE(
      HttpGet("127.0.0.1", server.port(), "/vars", &status, &body, &err))
      << err;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "custom-vars");

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/healthz", &status,
                      &body, &err))
      << err;
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("ratio too high"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, RejectsBusyPort) {
  MetricsHttpServer first;
  std::string err;
  ASSERT_TRUE(first.Start(0, &err)) << err;
  MetricsHttpServer second;
  EXPECT_FALSE(second.Start(first.port(), &err));
  EXPECT_FALSE(err.empty());
  first.Stop();
}

TEST(SystemStatsTest, SamplesProcSelfGracefully) {
  SystemStatsCollector collector;
  const SystemSample sample = collector.Sample();
#ifdef __linux__
  ASSERT_TRUE(sample.valid);
  EXPECT_GT(sample.rss_bytes, 0.0);
  EXPECT_GE(sample.vm_bytes, sample.rss_bytes);
  EXPECT_GE(sample.threads, 1);
  EXPECT_GE(sample.open_fds, 3);  // stdin/stdout/stderr at minimum
  EXPECT_GE(sample.utime_seconds, 0.0);
  EXPECT_GE(sample.stime_seconds, 0.0);
  // First sample has no previous observation: CPU% must be 0, not junk.
  EXPECT_DOUBLE_EQ(sample.cpu_percent, 0.0);
  const SystemSample second = collector.Sample();
  EXPECT_GE(second.cpu_percent, 0.0);
#else
  EXPECT_FALSE(sample.valid);
#endif
  // Hardware counters may be unavailable (perf_event_paranoid, seccomp);
  // either way the fields must be coherent.
  if (sample.hw.available) {
    EXPECT_GT(sample.hw.cycles + sample.hw.instructions, 0u);
  } else {
    EXPECT_EQ(sample.hw.cycles, 0u);
  }
}

TEST(SystemStatsTest, PublishGaugesMirrorsSample) {
  SystemSample sample;
  sample.valid = true;
  sample.rss_bytes = 12345.0;
  sample.threads = 3;
  SystemStatsCollector::PublishGauges(sample);
  bool found = false;
  for (const MetricSnapshot& m : Registry::Get().Collect()) {
    if (m.name == "wmlp_process_rss_bytes") {
      found = true;
      EXPECT_DOUBLE_EQ(m.gauge_value, 12345.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(TelemetrySessionTest, HttpPortWiresSamplerAndEndpoint) {
  health::CostRatioHealth::Get().ResetForTest();
  TelemetryRunOptions options;
  options.http_port = 0;  // ephemeral; auto-enables the 1 s sampler
  TelemetrySession session(options);
  ASSERT_TRUE(session.start_error().empty()) << session.start_error();
  ASSERT_GT(session.http_port(), 0);

  int status = 0;
  std::string body, err;
  ASSERT_TRUE(HttpGet("127.0.0.1", session.http_port(), "/vars", &status,
                      &body, &err))
      << err;
  EXPECT_EQ(status, 200);
  SnapshotFile snapshot;
  ASSERT_TRUE(ParseSnapshot(body, &snapshot, &err)) << err;
  EXPECT_TRUE(snapshot.has_timeseries);

  ASSERT_TRUE(session.Finish(&err)) << err;
  // The endpoint is down after Finish.
  EXPECT_FALSE(HttpGet("127.0.0.1", session.http_port(), "/vars", &status,
                       &body, &err));
}

TEST(TelemetrySessionTest, PortFileRecordsBoundPort) {
  const std::string port_file =
      ::testing::TempDir() + "/obstest_port.txt";
  TelemetryRunOptions options;
  options.http_port = 0;
  options.http_port_file = port_file;
  {
    TelemetrySession session(options);
    ASSERT_TRUE(session.start_error().empty()) << session.start_error();
    std::ifstream in(port_file);
    ASSERT_TRUE(in.good()) << "port file not written";
    int recorded = 0;
    in >> recorded;
    EXPECT_EQ(recorded, session.http_port());
    std::string err;
    ASSERT_TRUE(session.Finish(&err)) << err;
  }
  std::remove(port_file.c_str());
}

TEST(TelemetrySessionTest, SamplerSectionLandsInSnapshotFile) {
  const std::string out = ::testing::TempDir() + "/obstest_snapshot.json";
  TelemetryRunOptions options;
  options.telemetry_out = out;
  options.sample_interval = 0.01;
  options.sample_retention = 32;
  {
    TelemetrySession session(options);
    ASSERT_TRUE(session.start_error().empty()) << session.start_error();
    std::string err;
    ASSERT_TRUE(session.Finish(&err)) << err;
  }
  SnapshotFile snapshot;
  std::string err;
  ASSERT_TRUE(ReadSnapshotFile(out, &snapshot, &err)) << err;
  EXPECT_TRUE(snapshot.has_timeseries);
  EXPECT_EQ(snapshot.timeseries.retention, 32);
#ifdef __linux__
  EXPECT_TRUE(snapshot.has_system);
  EXPECT_TRUE(snapshot.system.valid);
#endif
  std::remove(out.c_str());
}

}  // namespace
}  // namespace wmlp::telemetry
