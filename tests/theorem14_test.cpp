// Theorem 1.4's integrality-gap machinery: the fractional RW schedule built
// from a fractional set cover is LP-feasible on the reduction trace and
// costs about w * |x|_1 + 2t per phase, while (Lemma 3.3) integral
// solutions must pay for integral covers.
#include <gtest/gtest.h>

#include <numeric>

#include "lp/paging_lp.h"
#include "setcover/frac_construction.h"
#include "setcover/greedy.h"
#include "setcover/reduction.h"
#include "util/rng.h"

namespace wmlp {
namespace {

using sc::SetSystem;

std::vector<double> LpCover(const SetSystem& sys,
                            const std::vector<int32_t>& targets) {
  // Recover an optimal fractional cover via the LP (FractionalCoverValue
  // solves it; re-solve here to get the vector).
  LpProblem lp;
  for (int32_t s = 0; s < sys.num_sets(); ++s) lp.AddVariable(1.0, 1.0);
  for (int32_t e : targets) {
    LpConstraint c;
    c.sense = ConstraintSense::kGe;
    c.rhs = 1.0;
    for (int32_t s : sys.covering(e)) {
      c.index.push_back(s);
      c.coef.push_back(1.0);
    }
    lp.AddConstraint(std::move(c));
  }
  const auto res = SolveLp(lp);
  EXPECT_EQ(res.status, SimplexStatus::kOptimal);
  return res.x;
}

TEST(Theorem14, ScheduleFeasibleAndWithinBudget) {
  Rng seeds(7);
  for (int trial = 0; trial < 4; ++trial) {
    const SetSystem sys = sc::GenRandomSetSystem(10, 6, 0.3, seeds.Next());
    std::vector<int32_t> phase(10);
    std::iota(phase.begin(), phase.end(), 0);
    sc::ReductionOptions opts;
    opts.repetitions = 2;
    const auto red = sc::BuildRwPagingTrace(sys, {phase}, opts);

    const std::vector<double> x = LpCover(sys, phase);
    const FracSchedule sched =
        sc::BuildFractionalRwSchedule(sys, {phase}, red, x);

    std::string err;
    ASSERT_TRUE(CheckFracScheduleFeasible(red.trace, sched, 1e-6, &err))
        << "trial " << trial << ": " << err;

    const Cost cost = FracScheduleEvictionCost(red.trace, sched);
    const Cost budget = sc::FractionalConstructionBudget(
        sys, red, x, static_cast<int64_t>(phase.size()));
    EXPECT_LE(cost, budget + 1e-6) << "trial " << trial;
    EXPECT_GT(cost, 0.0);
  }
}

TEST(Theorem14, MultiPhaseSchedule) {
  const SetSystem sys = sc::GenRandomSetSystem(8, 5, 0.35, 3);
  const auto phases = sc::GenPhaseEnsemble(sys, 2, 3, 8, 4);
  sc::ReductionOptions opts;
  opts.repetitions = 2;
  const auto red = sc::BuildRwPagingTrace(sys, phases, opts);
  std::vector<int32_t> all(8);
  std::iota(all.begin(), all.end(), 0);
  const std::vector<double> x = LpCover(sys, all);
  const FracSchedule sched =
      sc::BuildFractionalRwSchedule(sys, phases, red, x);
  std::string err;
  ASSERT_TRUE(CheckFracScheduleFeasible(red.trace, sched, 1e-6, &err))
      << err;
  const Cost cost = FracScheduleEvictionCost(red.trace, sched);
  const Cost per_phase_budget = sc::FractionalConstructionBudget(
      sys, red, x, static_cast<int64_t>(phases[0].size()));
  EXPECT_LE(cost, 3.0 * per_phase_budget + 1e-6);
}

TEST(Theorem14, GapVsIntegralCover) {
  // On systems where the fractional cover is cheaper than the integral
  // one, the fractional schedule's write-weight cost per phase sits below
  // the integral cover's w * c — the gap the rounding must lose.
  const SetSystem sys = sc::GenRandomSetSystem(12, 8, 0.25, 11);
  std::vector<int32_t> all(12);
  std::iota(all.begin(), all.end(), 0);
  const std::vector<double> x = LpCover(sys, all);
  double x1 = 0.0;
  for (double v : x) x1 += v;
  const int32_t c = sc::ExactCoverSize(sys, all);
  EXPECT_LE(x1, static_cast<double>(c) + 1e-6);

  sc::ReductionOptions opts;
  opts.repetitions = 2;
  const auto red = sc::BuildRwPagingTrace(sys, {all}, opts);
  const FracSchedule sched =
      sc::BuildFractionalRwSchedule(sys, {all}, red, x);
  std::string err;
  ASSERT_TRUE(CheckFracScheduleFeasible(red.trace, sched, 1e-6, &err))
      << err;
  const Cost w = red.trace.instance.weight(0, 1);
  const Cost frac_cost = FracScheduleEvictionCost(red.trace, sched);
  // The fractional schedule pays ~ w * |x|_1 + 2t; integral solutions pay
  // >= w * c by Lemma 3.3 (modulo the 2t additive).
  EXPECT_LE(frac_cost, w * x1 + 2.0 * 12 + 1e-6);
}

TEST(Theorem14, RejectsNonCoveringX) {
  const SetSystem sys = SetSystem(2, {{0}, {1}});
  sc::ReductionOptions opts;
  const auto red = sc::BuildRwPagingTrace(sys, {{0, 1}}, opts);
  const std::vector<double> bad = {0.25, 1.0};  // element 0 undercovered
  EXPECT_DEATH(sc::BuildFractionalRwSchedule(sys, {{0, 1}}, red, bad),
               "does not cover");
}

}  // namespace
}  // namespace wmlp
