#include <gtest/gtest.h>

#include "offline/belady.h"
#include "offline/bounds.h"
#include "offline/heuristics.h"
#include "offline/multilevel_dp.h"
#include "offline/weighted_opt.h"
#include "trace/generators.h"
#include "util/rng.h"
#include "writeback/rw_reduction.h"

namespace wmlp {
namespace {

TEST(Belady, ForcedEvictionsWithCacheOne) {
  Instance inst = Instance::Uniform(2, 1);
  Trace t{inst, {{0, 1}, {1, 1}, {0, 1}, {1, 1}}};
  const SimResult res = BeladyRun(t);
  EXPECT_EQ(res.misses, 4);
  EXPECT_NEAR(res.eviction_cost, 3.0, 1e-12);  // final resident not charged
}

TEST(Belady, ClassicCyclicExample) {
  Instance inst = Instance::Uniform(3, 2);
  Trace t{inst, {{0, 1}, {1, 1}, {2, 1}, {0, 1}, {1, 1}, {2, 1}}};
  const SimResult res = BeladyRun(t);
  EXPECT_NEAR(res.eviction_cost, 2.0, 1e-12);
}

TEST(Belady, NoEvictionsWhenCacheFits) {
  Instance inst = Instance::Uniform(4, 4);
  Trace t{inst, {{0, 1}, {1, 1}, {2, 1}, {3, 1}, {0, 1}, {2, 1}}};
  const SimResult res = BeladyRun(t);
  EXPECT_EQ(res.evictions, 0);
  EXPECT_EQ(res.hits, 2);
}

TEST(WeightedOpt, HandExample) {
  Instance inst(3, 2, 1, {{10.0}, {1.0}, {1.0}});
  Trace t{inst, {{0, 1}, {1, 1}, {2, 1}, {1, 1}, {2, 1}, {0, 1}}};
  EXPECT_NEAR(WeightedCachingOpt(t), 3.0, 1e-9);
}

TEST(WeightedOpt, EmptyAndTrivialTraces) {
  Instance inst = Instance::Uniform(3, 2);
  EXPECT_NEAR(WeightedCachingOpt(Trace{inst, {}}), 0.0, 1e-12);
  EXPECT_NEAR(WeightedCachingOpt(Trace{inst, {{0, 1}}}), 0.0, 1e-12);
  // Repeated single page: no eviction ever needed.
  EXPECT_NEAR(WeightedCachingOpt(Trace{inst, {{0, 1}, {0, 1}, {0, 1}}}),
              0.0, 1e-12);
}

TEST(WeightedOpt, MatchesBeladyOnUniformWeights) {
  Rng seeds(404);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst = Instance::Uniform(8, 3);
    const Trace t = GenZipf(inst, 60, 0.7, LevelMix::AllLowest(1),
                            seeds.Next());
    EXPECT_NEAR(WeightedCachingOpt(t), BeladyRun(t).eviction_cost, 1e-9)
        << "trial " << trial;
  }
}

TEST(WeightedOpt, MatchesDpOnWeightedInstances) {
  Rng seeds(405);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst(6, 2, 1,
                  MakeWeights(6, 1, WeightModel::kLogUniform, 16.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 25, 0.5, LevelMix::AllLowest(1),
                            seeds.Next());
    EXPECT_NEAR(WeightedCachingOpt(t), MultiLevelOptimal(t), 1e-9)
        << "trial " << trial;
  }
}

TEST(MultiLevelDp, HandExampleTwoLevels) {
  // k = 1, one page with two levels: request (0,2) then (0,1).
  Instance inst(2, 1, 2, {{10.0, 1.0}, {10.0, 1.0}});
  Trace t{inst, {{0, 2}, {0, 1}}};
  // Either fetch (0,2) then replace (cost 1), or fetch (0,1) upfront
  // (cost 0 total). OPT = 0.
  EXPECT_NEAR(MultiLevelOptimal(t), 0.0, 1e-12);
}

TEST(MultiLevelDp, ForcedReplacementCost) {
  // Request (0,2), then (1,2) evicting, then (0,1): with k=1 every
  // transition forced; cheapest keeps low copies: costs 1 (evict (0,2)) +
  // 1 (evict (1,2)) = 2 if the final fetch is (0,1) which is free.
  Instance inst(2, 1, 2, {{10.0, 1.0}, {10.0, 1.0}});
  Trace t{inst, {{0, 2}, {1, 2}, {0, 1}}};
  EXPECT_NEAR(MultiLevelOptimal(t), 2.0, 1e-12);
}

TEST(MultiLevelDp, PrefetchHigherLevelWhenWriteFollows) {
  // k = 2, pages 0,1: read 0, read 1, write 0, with an eviction squeeze in
  // between is unnecessary here; direct: read 0 then write 0: fetching
  // (0,1) at the read avoids the forced replacement cost 1.
  Instance inst(2, 2, 2, {{10.0, 1.0}, {10.0, 1.0}});
  Trace t{inst, {{0, 2}, {0, 1}}};
  EXPECT_NEAR(MultiLevelOptimal(t), 0.0, 1e-12);
}

TEST(MultiLevelDp, LowerBoundHolds) {
  Rng seeds(406);
  for (int trial = 0; trial < 8; ++trial) {
    Instance inst(5, 2, 2,
                  MakeWeights(5, 2, WeightModel::kGeometricLevels, 4.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 30, 0.6, LevelMix::UniformMix(2),
                            seeds.Next());
    const Cost opt = MultiLevelOptimal(t);
    EXPECT_LE(MultiLevelLowerBound(t), opt + 1e-9) << "trial " << trial;
  }
}

TEST(MultiLevelDp, HeuristicsUpperBound) {
  Rng seeds(407);
  for (int trial = 0; trial < 8; ++trial) {
    Instance inst(5, 2, 2,
                  MakeWeights(5, 2, WeightModel::kGeometricLevels, 4.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 30, 0.6, LevelMix::UniformMix(2),
                            seeds.Next());
    const Cost opt = MultiLevelOptimal(t);
    EXPECT_GE(OfflineFarthestNextUse(t), opt - 1e-9) << "trial " << trial;
    EXPECT_GE(OfflineWeightedFarthest(t), opt - 1e-9) << "trial " << trial;
    EXPECT_GE(OfflineHeuristicUpperBound(t), opt - 1e-9) << "trial " << trial;
  }
}

TEST(WritebackDp, HandExample) {
  wb::WbInstance inst(3, 2, {5.0, 5.0, 5.0}, {1.0, 1.0, 1.0});
  wb::WbTrace t{inst,
                {{0, wb::Op::kWrite},
                 {1, wb::Op::kRead},
                 {2, wb::Op::kRead},
                 {0, wb::Op::kRead}}};
  EXPECT_NEAR(WritebackOptimal(t), 1.0, 1e-12);
}

TEST(WritebackDp, EquivalenceWithRwReduction) {
  // Lemma 2.1: the writeback optimum equals the multi-level optimum of the
  // reduced RW trace — validated here by two independent DPs.
  Rng seeds(408);
  for (int trial = 0; trial < 10; ++trial) {
    wb::WbWorkloadOptions opts;
    opts.num_pages = 5;
    opts.cache_size = 2;
    opts.length = 30;
    opts.write_ratio = 0.4;
    opts.dirty_cost = 6.0;
    opts.clean_cost = 1.0;
    opts.page_dependent = (trial % 2 == 1);
    opts.seed = seeds.Next();
    const wb::WbTrace t = wb::GenWbZipf(opts);
    EXPECT_NEAR(WritebackOptimal(t), MultiLevelOptimal(wb::ToRwTrace(t)),
                1e-9)
        << "trial " << trial;
  }
}

TEST(WeightedOpt, MonotoneNonIncreasingInK) {
  Rng seeds(606);
  for (int trial = 0; trial < 5; ++trial) {
    const auto weights =
        MakeWeights(10, 1, WeightModel::kLogUniform, 8.0, seeds.Next());
    std::vector<Request> reqs;
    {
      Instance base(10, 1, 1, weights);
      reqs = GenZipf(base, 80, 0.6, LevelMix::AllLowest(1), seeds.Next())
                 .requests;
    }
    Cost prev = -1.0;
    for (int32_t k = 1; k <= 10; ++k) {
      Instance inst(10, k, 1, weights);
      const Cost opt = WeightedCachingOpt(Trace{inst, reqs});
      if (prev >= 0.0) {
        EXPECT_LE(opt, prev + 1e-9) << "k=" << k << " trial " << trial;
      }
      prev = opt;
    }
    // k = n: the whole universe fits, never evict.
    EXPECT_NEAR(prev, 0.0, 1e-9);
  }
}

TEST(WeightedOpt, PrefixCostsAreMonotone) {
  // OPT of a prefix never exceeds OPT of the full trace (evictions only
  // accumulate).
  Instance inst(8, 3, 1, MakeWeights(8, 1, WeightModel::kZipfPages, 8.0, 1));
  const Trace full = GenZipf(inst, 120, 0.7, LevelMix::AllLowest(1), 2);
  Cost prev = 0.0;
  for (size_t len = 20; len <= full.requests.size(); len += 20) {
    Trace prefix{inst, {full.requests.begin(),
                        full.requests.begin() + static_cast<long>(len)}};
    const Cost opt = WeightedCachingOpt(prefix);
    EXPECT_GE(opt, prev - 1e-9) << "len=" << len;
    prev = opt;
  }
}

TEST(Bounds, ExactForSingleLevel) {
  Instance inst(6, 3, 1, MakeWeights(6, 1, WeightModel::kZipfPages, 8.0, 1));
  const Trace t = GenZipf(inst, 100, 0.7, LevelMix::AllLowest(1), 2);
  const OfflineBounds b = ComputeOfflineBounds(t);
  EXPECT_TRUE(b.exact);
  EXPECT_EQ(b.lower, b.upper);
  EXPECT_NEAR(b.lower, WeightedCachingOpt(t), 1e-9);
}

TEST(Bounds, ExactViaDpForSmallMultiLevel) {
  Instance inst(5, 2, 2,
                MakeWeights(5, 2, WeightModel::kGeometricLevels, 4.0, 3));
  const Trace t = GenZipf(inst, 40, 0.6, LevelMix::UniformMix(2), 4);
  const OfflineBounds b = ComputeOfflineBounds(t);
  EXPECT_TRUE(b.exact);
  EXPECT_NEAR(b.lower, MultiLevelOptimal(t), 1e-9);
}

TEST(Bounds, SandwichForLargeMultiLevel) {
  Instance inst(64, 8, 2,
                MakeWeights(64, 2, WeightModel::kGeometricLevels, 4.0, 5));
  const Trace t = GenZipf(inst, 400, 0.8, LevelMix::UniformMix(2), 6);
  BoundsOptions opts;
  opts.dp_state_limit = 100;  // force the sandwich path
  const OfflineBounds b = ComputeOfflineBounds(t, opts);
  EXPECT_FALSE(b.exact);
  EXPECT_LE(b.lower, b.upper + 1e-9);
  EXPECT_GT(b.upper, 0.0);
}

TEST(Bounds, SandwichContainsExactOptimum) {
  Rng seeds(409);
  for (int trial = 0; trial < 5; ++trial) {
    Instance inst(5, 2, 2,
                  MakeWeights(5, 2, WeightModel::kGeometricLevels, 4.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 30, 0.6, LevelMix::UniformMix(2),
                            seeds.Next());
    const Cost opt = MultiLevelOptimal(t);
    BoundsOptions opts;
    opts.dp_state_limit = 10;  // force bounds path
    const OfflineBounds b = ComputeOfflineBounds(t, opts);
    EXPECT_LE(b.lower, opt + 1e-9);
    EXPECT_GE(b.upper, opt - 1e-9);
  }
}

}  // namespace
}  // namespace wmlp
