// Regression tests for the CLI flag parser (tools/tool_util.h).
//
// The old getters called strtoll/strtod with no error checking, so a typo
// like "--trials 1O" silently parsed as 0 and the tool ran a zero-trial
// experiment instead of failing. The getters now die with a message naming
// the flag on any malformed or partially-consumed value.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tool_util.h"

namespace wmlp::tools {
namespace {

Flags MakeFlags(std::initializer_list<std::string> args) {
  static std::vector<std::string> storage;
  storage.assign({"prog"});
  storage.insert(storage.end(), args);
  static std::vector<char*> argv;
  argv.clear();
  for (std::string& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(ToolUtilTest, ParsesWellFormedFlags) {
  const Flags flags =
      MakeFlags({"--trials", "12", "--alpha", "0.75", "--out", "x.txt",
                 "--verbose"});
  EXPECT_EQ(flags.GetInt("trials", 0), 12);
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 0.75);
  EXPECT_EQ(flags.GetString("out"), "x.txt");
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(ToolUtilTest, MissingFlagsReturnDefaults) {
  const Flags flags = MakeFlags({});
  EXPECT_EQ(flags.GetInt("trials", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("out", "fallback"), "fallback");
}

TEST(ToolUtilTest, NegativeAndScientificValuesParse) {
  const Flags flags = MakeFlags({"--seed", "-3", "--ratio", "1e3"});
  EXPECT_EQ(flags.GetInt("seed", 0), -3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 1000.0);
}

TEST(ToolUtilDeathTest, TrailingJunkIntegerDies) {
  // The motivating bug: "1O" (letter O) used to parse as 0.
  const Flags flags = MakeFlags({"--trials", "1O"});
  EXPECT_EXIT(flags.GetInt("trials", 0), ::testing::ExitedWithCode(1),
              "--trials expects an integer, got '1O'");
}

TEST(ToolUtilDeathTest, NonNumericIntegerDies) {
  const Flags flags = MakeFlags({"--trials", "many"});
  EXPECT_EXIT(flags.GetInt("trials", 0), ::testing::ExitedWithCode(1),
              "--trials expects an integer");
}

TEST(ToolUtilDeathTest, FloatForIntegerFlagDies) {
  const Flags flags = MakeFlags({"--trials", "2.5"});
  EXPECT_EXIT(flags.GetInt("trials", 0), ::testing::ExitedWithCode(1),
              "--trials expects an integer");
}

TEST(ToolUtilDeathTest, EmptyIntegerValueDies) {
  // "--trials --verbose": value-less flag followed by another flag.
  const Flags flags = MakeFlags({"--trials", "--verbose"});
  EXPECT_EXIT(flags.GetInt("trials", 0), ::testing::ExitedWithCode(1),
              "--trials expects an integer");
}

TEST(ToolUtilDeathTest, TrailingJunkDoubleDies) {
  const Flags flags = MakeFlags({"--alpha", "0.5x"});
  EXPECT_EXIT(flags.GetDouble("alpha", 0.0), ::testing::ExitedWithCode(1),
              "--alpha expects a number, got '0.5x'");
}

TEST(ToolUtilDeathTest, OutOfRangeDoubleDies) {
  const Flags flags = MakeFlags({"--alpha", "1e999"});
  EXPECT_EXIT(flags.GetDouble("alpha", 0.0), ::testing::ExitedWithCode(1),
              "--alpha expects a number");
}

}  // namespace
}  // namespace wmlp::tools
