#include <gtest/gtest.h>

#include "core/randomized.h"
#include "core/replay.h"
#include "core/rounding_multilevel.h"
#include "core/rounding_weighted.h"
#include "sim/simulator.h"
#include "trace/generators.h"

namespace wmlp {
namespace {

TEST(Replay, TrajectoryMatchesDirectRun) {
  Instance inst(16, 4, 2,
                MakeWeights(16, 2, WeightModel::kGeometricLevels, 8.0, 1));
  const Trace t = GenZipf(inst, 400, 0.8, LevelMix::UniformMix(2), 2);

  FractionalPolicyPtr recorder = MakeFractionalStack();
  const auto traj = FracTrajectory::Record(*recorder, t);

  FractionalPolicyPtr direct = MakeFractionalStack();
  direct->Attach(inst);
  ReplayFractional replay(traj);
  replay.Attach(inst);
  for (Time i = 0; i < t.length(); ++i) {
    const Request& r = t.requests[static_cast<size_t>(i)];
    direct->Serve(i, r);
    replay.Serve(i, r);
    for (PageId p = 0; p < inst.num_pages(); ++p) {
      for (Level l = 1; l <= 2; ++l) {
        ASSERT_EQ(replay.U(p, l), direct->U(p, l))
            << "divergence at t=" << i << " p=" << p << " l=" << l;
      }
    }
    ASSERT_DOUBLE_EQ(replay.lp_cost(), direct->lp_cost());
  }
}

TEST(Replay, ChangedPagesMatch) {
  Instance inst = Instance::Uniform(12, 3);
  const Trace t = GenZipf(inst, 200, 0.7, LevelMix::AllLowest(1), 3);
  FractionalPolicyPtr recorder = MakeFractionalStack();
  const auto traj = FracTrajectory::Record(*recorder, t);
  ReplayFractional replay(traj);
  replay.Attach(inst);
  FractionalPolicyPtr direct = MakeFractionalStack();
  direct->Attach(inst);
  for (Time i = 0; i < t.length(); ++i) {
    const Request& r = t.requests[static_cast<size_t>(i)];
    direct->Serve(i, r);
    replay.Serve(i, r);
    // The replay's changed list is the recorder's (deduplicated to pages
    // with a genuine value change); every genuinely changed page must be
    // in it.
    std::vector<bool> in_replay(12, false);
    for (PageId p : replay.last_changed()) in_replay[static_cast<size_t>(p)] =
        true;
    for (PageId p : direct->last_changed()) {
      // direct may report spurious "changed" pages (touched but equal);
      // check value-changed pages only via previous-state tracking is
      // covered by TrajectoryMatchesDirectRun. Here: replay-changed subset
      // of direct-changed.
      (void)p;
    }
    for (PageId p : replay.last_changed()) {
      bool in_direct = false;
      for (PageId q : direct->last_changed()) in_direct |= (q == p);
      EXPECT_TRUE(in_direct);
    }
  }
}

TEST(Replay, RoundingIdenticalToDirectForSameSeed) {
  // Same rounding seed + identical fractional values => identical random
  // decisions => identical integral runs. The replay path must be
  // bit-for-bit equivalent.
  Instance inst(24, 6, 1,
                MakeWeights(24, 1, WeightModel::kLogUniform, 8.0, 4));
  const Trace t = GenZipf(inst, 800, 0.8, LevelMix::AllLowest(1), 5);
  FractionalPolicyPtr recorder = MakeFractionalStack();
  const auto traj = FracTrajectory::Record(*recorder, t);
  for (uint64_t seed = 0; seed < 3; ++seed) {
    RoundedWeightedPaging direct(MakeFractionalStack(), seed);
    RoundedWeightedPaging replayed(std::make_unique<ReplayFractional>(traj),
                                   seed);
    const SimResult a = Simulate(t, direct);
    const SimResult b = Simulate(t, replayed);
    EXPECT_EQ(a.eviction_cost, b.eviction_cost) << "seed " << seed;
    EXPECT_EQ(a.evictions, b.evictions) << "seed " << seed;
  }
}

TEST(Replay, MultiLevelRoundingIdenticalToDirect) {
  Instance inst(16, 4, 3,
                MakeWeights(16, 3, WeightModel::kGeometricLevels, 16.0, 6));
  const Trace t = GenZipf(inst, 600, 0.8, LevelMix::UniformMix(3), 7);
  FractionalPolicyPtr recorder = MakeFractionalStack();
  const auto traj = FracTrajectory::Record(*recorder, t);
  for (uint64_t seed = 0; seed < 3; ++seed) {
    RoundedMultiLevel direct(MakeFractionalStack(), seed);
    RoundedMultiLevel replayed(std::make_unique<ReplayFractional>(traj),
                               seed);
    const SimResult a = Simulate(t, direct);
    const SimResult b = Simulate(t, replayed);
    EXPECT_EQ(a.eviction_cost, b.eviction_cost) << "seed " << seed;
  }
}

TEST(Replay, FactoryProducesWorkingPolicies) {
  Instance inst(16, 4, 2,
                MakeWeights(16, 2, WeightModel::kGeometricLevels, 8.0, 8));
  const Trace t = GenZipf(inst, 400, 0.8, LevelMix::UniformMix(2), 9);
  const PolicyFactory factory = MakeReplayRandomizedFactory(t);
  for (uint64_t seed = 0; seed < 3; ++seed) {
    PolicyPtr p = factory(seed);
    const SimResult res = Simulate(t, *p);
    EXPECT_GT(res.misses, 0);
  }
}

TEST(Replay, AttachRejectsMismatchedInstance) {
  Instance inst = Instance::Uniform(8, 2);
  const Trace t = GenZipf(inst, 50, 0.5, LevelMix::AllLowest(1), 10);
  FractionalPolicyPtr recorder = MakeFractionalStack();
  const auto traj = FracTrajectory::Record(*recorder, t);
  ReplayFractional replay(traj);
  Instance other = Instance::Uniform(9, 2);
  EXPECT_DEATH(replay.Attach(other), "does not match");
}

TEST(Replay, ServePastEndFatal) {
  Instance inst = Instance::Uniform(4, 2);
  Trace t{inst, {{0, 1}, {1, 1}}};
  FractionalPolicyPtr recorder = MakeFractionalStack();
  const auto traj = FracTrajectory::Record(*recorder, t);
  ReplayFractional replay(traj);
  replay.Attach(inst);
  replay.Serve(0, t.requests[0]);
  replay.Serve(1, t.requests[1]);
  EXPECT_DEATH(replay.Serve(2, Request{0, 1}), "past the recorded");
}

TEST(Replay, CompressionIsSparse) {
  // On a localized trace most pages don't move each step: the delta log
  // must be much smaller than T * n entries.
  Instance inst = Instance::Uniform(64, 8);
  const Trace t = GenZipf(inst, 2000, 1.1, LevelMix::AllLowest(1), 11);
  FractionalPolicyPtr recorder = MakeFractionalStack();
  const auto traj = FracTrajectory::Record(*recorder, t);
  EXPECT_EQ(traj->num_steps(), 2000);
  EXPECT_LT(traj->num_deltas(), 2000 * 64 / 2);
}

}  // namespace
}  // namespace wmlp
