// Consistency/robustness pins for the prediction-augmented policy
// (docs/ARCHITECTURE.md §14) and the metamorphic battery extended to every
// new policy family:
//
//   * Perfect predictions (lambda = 1, zero-noise oracle): cost <= the best
//     known-weight online policy on the E8 trace family within a documented
//     slack (the FTP expert is weighted Belady on exact arrival times).
//   * Adversarial predictions: the combiner's cost stays within its
//     robustness factor of the waterfill expert — and lambda = 0 is
//     bitwise waterfill no matter how corrupted the predictor is.
//   * Graceful degradation: cost is monotone-ish in the corruption level,
//     with the endpoints pinned hard.
//   * Dyadic weight-scaling invariance for oracle-primed policies (the
//     registry-constructed forms are covered by metamorphic_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/request_source.h"
#include "predict/noise.h"
#include "predict/oracle.h"
#include "predict/predictive_policy.h"
#include "predict/unknown_weights.h"
#include "registry/policy_registry.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

using predict::FollowPredictionPolicy;
using predict::MakePredictivePolicy;
using predict::NoiseKind;
using predict::OraclePredictor;
using predict::Predictor;
using predict::PredictiveOptions;
using predict::PredictorPtr;

// The E8 trace family (bench_e8_eta_ablation): zipf page popularity over
// log-uniform weights, plus the loop and phase stressors.
std::vector<Trace> E8Family(uint64_t seed) {
  std::vector<Trace> traces;
  {
    Instance inst(64, 16, 1, MakeWeights(64, 1, WeightModel::kLogUniform,
                                         16.0, DeriveSeed(seed, 0)));
    traces.push_back(GenZipf(std::move(inst), 4000, 0.8,
                             LevelMix::AllLowest(1), DeriveSeed(seed, 1)));
  }
  {
    Instance inst(32, 8, 1, MakeWeights(32, 1, WeightModel::kZipfPages, 8.0,
                                        DeriveSeed(seed, 2)));
    traces.push_back(GenLoop(std::move(inst), 3000, 9, LevelMix::AllLowest(1)));
  }
  {
    Instance inst(48, 12, 2, MakeWeights(48, 2, WeightModel::kGeometricLevels,
                                         4.0, DeriveSeed(seed, 3)));
    traces.push_back(GenPhases(std::move(inst), 4000, 16, 500, 0.9,
                               LevelMix::UniformMix(2), DeriveSeed(seed, 4)));
  }
  return traces;
}

Cost RunPolicy(const Trace& trace, PolicyPtr policy) {
  TraceSource source(trace);
  Engine engine(source, *policy);
  return engine.Run().eviction_cost;
}

Cost RunNamed(const Trace& trace, const std::string& name, uint64_t seed) {
  return RunPolicy(trace, MakePolicyByName(name, seed));
}

PolicyPtr OracleCombiner(const Trace& trace, double lambda, NoiseKind noise,
                         double eta, uint64_t seed) {
  PredictiveOptions options;
  options.lambda = lambda;
  options.noise = noise;
  options.eta = eta;
  std::string error;
  PolicyPtr policy = MakePredictivePolicy(
      seed, options, OraclePredictor::FromTrace(trace), &error);
  EXPECT_NE(policy, nullptr) << error;
  return policy;
}

// An adversarial predictor built for the tests: inverts the oracle's gap
// order around a horizon, so pages about to be requested look dead and
// vice versa — worst-case advice for FTP.
class InvertingPredictor final : public Predictor {
 public:
  explicit InvertingPredictor(PredictorPtr base, double horizon)
      : base_(std::move(base)), horizon_(horizon) {}

  void Attach(const Instance& instance) override { base_->Attach(instance); }

  double PredictNext(Time now, PageId p) const override {
    const double pred = base_->PredictNext(now, p);
    const double gap = pred - static_cast<double>(now);
    if (gap >= horizon_) return static_cast<double>(now) + 1.0;
    return static_cast<double>(now) + (horizon_ - gap) + 1.0;
  }

  std::unique_ptr<Predictor> Clone() const override {
    return std::make_unique<InvertingPredictor>(base_->Clone(), horizon_);
  }
  std::string name() const override { return "inverted"; }

 private:
  PredictorPtr base_;
  double horizon_;
};

TEST(PredictionPolicyTest, PerfectPredictionsMatchBestKnownWeightPolicy) {
  // Documented consistency slack: with lambda = 1 and a zero-noise oracle
  // the augmented policy must come within 10% of the best known-weight
  // online policy of the paper's set on every E8-family trace (it usually
  // wins outright; the slack absorbs the fetch-at-requested-level
  // convention difference on multi-level traces).
  const double kSlack = 1.10;
  for (const Trace& trace : E8Family(2026)) {
    const Cost ftp =
        RunPolicy(trace, OracleCombiner(trace, 1.0, NoiseKind::kNone, 0.0, 1));
    Cost best = std::numeric_limits<Cost>::infinity();
    for (const char* name : {"waterfill", "landlord", "marking", "lru"}) {
      if (std::string(name) == "marking" && trace.instance.num_levels() > 1) {
        continue;  // marking is single-level only
      }
      best = std::min(best, RunNamed(trace, name, 7));
    }
    EXPECT_LE(ftp, best * kSlack)
        << "n=" << trace.instance.num_pages()
        << " ell=" << trace.instance.num_levels();
  }
}

TEST(PredictionPolicyTest, LambdaZeroIsBitwiseWaterfillEvenWhenAdversarial) {
  for (const Trace& trace : E8Family(11)) {
    PredictorPtr inverted = std::make_unique<InvertingPredictor>(
        OraclePredictor::FromTrace(trace), 1000.0);
    PredictiveOptions options;
    options.lambda = 0.0;
    PolicyPtr combiner =
        MakePredictivePolicy(3, options, std::move(inverted), nullptr);
    ASSERT_NE(combiner, nullptr);
    const Cost combined = RunPolicy(trace, std::move(combiner));
    const Cost waterfill = RunNamed(trace, "waterfill", 3);
    EXPECT_EQ(combined, waterfill);
  }
}

TEST(PredictionPolicyTest, AdversarialPredictionsStayWithinRobustnessFactor) {
  // Documented robustness pin: at the default lambda = 0.75 the combiner's
  // theta is (1 + 0.75) / (1 - 0.75) = 7, and the switching argument bounds
  // cost by (1 + theta) * waterfill + switching overhead. The test pins the
  // empirical factor at 2 * (1 + theta) against waterfill, and relates it
  // to fractional-fast (the LP relaxation's rounded stack) as the paper's
  // reference scale.
  const double kFactor = 2.0 * (1.0 + 7.0);
  for (const Trace& trace : E8Family(23)) {
    PredictorPtr inverted = std::make_unique<InvertingPredictor>(
        OraclePredictor::FromTrace(trace), 1000.0);
    PredictiveOptions options;  // lambda = 0.75
    PolicyPtr combiner =
        MakePredictivePolicy(5, options, std::move(inverted), nullptr);
    ASSERT_NE(combiner, nullptr);
    const Cost combined = RunPolicy(trace, std::move(combiner));
    const Cost waterfill = RunNamed(trace, "waterfill", 5);
    EXPECT_LE(combined, kFactor * waterfill);
    const Cost fractional = RunNamed(trace, "fractional-rounded-linear", 5);
    EXPECT_LE(combined, 4.0 * kFactor * fractional);
  }
}

// Declares one page dead and everything else imminent: the most damaging
// advice FTP can receive when that page is hot and expensive.
class DeadPagePredictor final : public Predictor {
 public:
  explicit DeadPagePredictor(PageId dead) : dead_(dead) {}
  double PredictNext(Time now, PageId p) const override {
    return p == dead_ ? predict::kNever : static_cast<double>(now) + 1.0;
  }
  std::unique_ptr<Predictor> Clone() const override {
    return std::make_unique<DeadPagePredictor>(dead_);
  }
  std::string name() const override { return "deadpage"; }

 private:
  PageId dead_;
};

TEST(PredictionPolicyTest, SwitchingAbandonsAdversarialAdvice) {
  // Page 0 is hot (every other request) and 128x heavier than the rest;
  // the adversarial predictor declares it dead, so pure FTP re-evicts it
  // on every miss while waterfill retains it. The combiner must detect
  // the bleed, switch to the robust expert, and land far below pure FTP.
  std::vector<std::vector<Cost>> weights{{128.0}};
  for (int i = 1; i < 16; ++i) weights.push_back({1.0});
  Instance inst(16, 4, 1, std::move(weights));
  std::vector<Request> reqs;
  for (int i = 0; i < 2000; ++i) {
    reqs.push_back(i % 2 == 0 ? Request{0, 1}
                              : Request{1 + ((i / 2) % 15), 1});
  }
  const Trace trace{std::move(inst), std::move(reqs)};
  PredictiveOptions options;
  options.lambda = 0.5;  // theta = 3: switches early once FTP bleeds
  const Cost combined = RunPolicy(
      trace, MakePredictivePolicy(5, options,
                                  std::make_unique<DeadPagePredictor>(0)));
  PredictiveOptions pure;
  pure.lambda = 1.0;
  const Cost ftp = RunPolicy(
      trace,
      MakePredictivePolicy(5, pure, std::make_unique<DeadPagePredictor>(0)));
  EXPECT_LT(combined, 0.2 * ftp);
  const Cost waterfill = RunNamed(trace, "waterfill", 5);
  EXPECT_LE(combined, 8.0 * waterfill);
}

TEST(PredictionPolicyTest, CostDegradesGracefullyInEta) {
  // Monotone-in-eta endpoints: perfect <= mildly corrupted * slack and
  // mildly corrupted <= heavily corrupted * slack, on the E8 zipf trace
  // with swap corruption (the adversarial channel of E18). The middle is
  // noisy, so the pin is endpoint-to-endpoint with a band, not per-step.
  const Trace trace = E8Family(47)[0];
  const Cost perfect =
      RunPolicy(trace, OracleCombiner(trace, 0.75, NoiseKind::kNone, 0.0, 9));
  const Cost mild =
      RunPolicy(trace, OracleCombiner(trace, 0.75, NoiseKind::kSwap, 0.25, 9));
  const Cost heavy =
      RunPolicy(trace, OracleCombiner(trace, 0.75, NoiseKind::kSwap, 1.0, 9));
  EXPECT_LE(perfect, mild * 1.05);
  EXPECT_LE(mild, heavy * 1.25);
  // And corruption can never escape the robustness bound.
  const Cost waterfill = RunNamed(trace, "waterfill", 9);
  EXPECT_LE(heavy, 16.0 * waterfill);
}

TEST(PredictionPolicyTest, DeterministicAcrossRuns) {
  const Trace trace = E8Family(53)[0];
  for (const char* name :
       {"predictive", "predictive:lambda=0.5,noise=lognormal,eta=0.5",
        "unknown-weights", "arc", "car", "lruk"}) {
    const Cost a = RunNamed(trace, name, 77);
    const Cost b = RunNamed(trace, name, 77);
    EXPECT_EQ(a, b) << name;
  }
}

Trace ScaleWeights(const Trace& trace, double c) {
  const Instance& inst = trace.instance;
  std::vector<std::vector<Cost>> weights;
  weights.reserve(static_cast<size_t>(inst.num_pages()));
  for (PageId p = 0; p < inst.num_pages(); ++p) {
    std::vector<Cost> row(static_cast<size_t>(inst.num_levels()));
    for (Level i = 1; i <= inst.num_levels(); ++i) {
      row[static_cast<size_t>(i - 1)] = c * inst.weight(p, i);
    }
    weights.push_back(std::move(row));
  }
  return Trace{Instance(inst.num_pages(), inst.cache_size(),
                        inst.num_levels(), std::move(weights)),
               trace.requests};
}

TEST(PredictionPolicyTest, DyadicScalingIsExactForOraclePrimedCombiner) {
  // metamorphic_test covers the registry names; this extends the bitwise
  // dyadic-scaling invariance to the oracle-primed construction, where the
  // FTP expert's cross-multiplied victim rule carries the burden.
  for (const Trace& trace : E8Family(61)) {
    const Cost base = RunPolicy(
        trace, OracleCombiner(trace, 0.75, NoiseKind::kLogNormal, 0.5, 13));
    for (const double c : {2.0, 1024.0}) {
      const Trace scaled = ScaleWeights(trace, c);
      const Cost after = RunPolicy(
          scaled, OracleCombiner(scaled, 0.75, NoiseKind::kLogNormal, 0.5, 13));
      EXPECT_EQ(after, c * base);
    }
  }
}

TEST(PredictionPolicyTest, BatchServingIsBitwiseEquivalentForCombiner) {
  const Trace trace = E8Family(71)[2];
  auto run_batched = [&](int32_t batch) {
    PolicyPtr policy = OracleCombiner(trace, 0.75, NoiseKind::kSwap, 0.3, 15);
    TraceSource source(trace);
    EngineOptions options;
    options.batch = batch;
    Engine engine(source, *policy, options);
    return engine.Run().eviction_cost;
  };
  const Cost single = run_batched(1);
  for (const int32_t batch : {2, 7, 64, 4096}) {
    EXPECT_EQ(run_batched(batch), single) << "batch=" << batch;
  }
}

TEST(PredictionPolicyTest, RegistryRejectsOutOfRangePredictiveParams) {
  for (const char* bad :
       {"predictive:lambda=1.5", "predictive:lambda=-0.1",
        "predictive:lambda=nan", "predictive:eta=-1",
        "predictive:noise=swap,eta=2", "predictive:noise=gaussian,eta=0.5",
        "predictive:alpha=0", "predictive:alpha=2", "predictive:horizon=-5",
        "predictive:bogus=1", "predictive:lambda", "lruk:k=0", "lruk:k=99",
        "lruk:k=abc"}) {
    EXPECT_EQ(MakePolicyByName(bad, 1), nullptr) << bad;
  }
  for (const char* good :
       {"predictive:lambda=0.5",
        "predictive:lambda=0.25,alpha=0.5,noise=stale,eta=100,horizon=32",
        "predictive:noise=lognormal,eta=2.5", "lruk:k=3"}) {
    EXPECT_NE(MakePolicyByName(good, 1), nullptr) << good;
  }
}

}  // namespace
}  // namespace wmlp
