// Concurrency stress for the sharded serving layer. The interesting
// failures here are data races and lost wakeups, so this binary is meant
// to run under TSan (the CI tsan job raises the iteration count via
// WMLP_STRESS_ITERS); in a plain build it still verifies ordering and
// determinism under real thread contention, just with fewer rounds.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "server/inbox.h"
#include "server/server.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

int64_t StressIters(int64_t base) {
  const char* env = std::getenv("WMLP_STRESS_ITERS");
  if (env == nullptr) return base;
  const int64_t parsed = std::atoll(env);
  return parsed > 0 ? parsed : base;
}

// Hammers one inbox with P producers pushing randomized batch sizes and
// one consumer merging; every round must come out as 0..T-1 in order.
TEST(ServerStressTest, InboxProducersConsumerOrdering) {
  const int64_t rounds = StressIters(20);
  constexpr int32_t kProducers = 8;
  constexpr int64_t kTotal = 4000;
  for (int64_t round = 0; round < rounds; ++round) {
    ShardInbox inbox(kProducers);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int32_t c = 0; c < kProducers; ++c) {
      producers.emplace_back([c, round, &inbox] {
        Rng rng(DeriveSeed(static_cast<uint64_t>(round) * 31 + 7,
                           static_cast<uint64_t>(c)));
        std::vector<SeqRequest> batch;
        // Producer c owns seqs congruent to c mod kProducers, ascending.
        for (int64_t seq = c; seq < kTotal; seq += kProducers) {
          batch.push_back(SeqRequest{seq, Request{0, 1}});
          if (rng.NextBounded(4) == 0) {
            inbox.Push(c, batch);
            batch.clear();
          }
        }
        inbox.Push(c, batch);
        inbox.Close(c);
      });
    }
    std::atomic<bool> ok{true};
    std::thread consumer([&inbox, &ok] {
      std::vector<SeqRequest> out(128);
      int64_t expected = 0;
      while (true) {
        const size_t got = inbox.PopReady(out.data(), out.size());
        if (got == 0) break;
        for (size_t i = 0; i < got; ++i) {
          if (out[i].seq != expected) {
            ok.store(false);
            return;
          }
          ++expected;
        }
      }
      if (expected != kTotal) ok.store(false);
    });
    for (std::thread& p : producers) p.join();
    consumer.join();
    ASSERT_TRUE(ok.load()) << "round " << round;
    EXPECT_TRUE(inbox.drained());
  }
}

// Full-pipeline hammer: many concurrent serves with varying client
// counts and batch sizes must all reproduce the reference cost fields.
TEST(ServerStressTest, ConcurrentServesStayDeterministic) {
  const int64_t rounds = StressIters(6);
  Instance inst(48, 12, 2,
                MakeWeights(48, 2, WeightModel::kGeometricLevels, 4.0, 3));
  const Trace trace =
      GenZipf(std::move(inst), 3000, 0.8, LevelMix::UniformMix(2), 5);

  ServeOptions reference_options;
  reference_options.shards = 4;
  reference_options.clients = 1;
  reference_options.policy = "waterfill";
  reference_options.seed = 11;
  const ServeReport reference = ServeTrace(trace, reference_options);

  for (int64_t round = 0; round < rounds; ++round) {
    for (const int32_t clients : {2, 5, 11}) {
      ServeOptions options = reference_options;
      options.clients = clients;
      options.batch = 1 + (round * 13 + clients) % 97;
      const ServeReport report = ServeTrace(trace, options);
      ASSERT_EQ(report.totals.eviction_cost,
                reference.totals.eviction_cost)
          << "round " << round << " clients " << clients;
      ASSERT_EQ(report.totals.hits, reference.totals.hits);
      for (size_t s = 0; s < report.shards.size(); ++s) {
        ASSERT_EQ(report.shards[s].result.eviction_cost,
                  reference.shards[s].result.eviction_cost)
            << "shard " << s;
      }
    }
  }
}

// Close/push interleavings with stalling clients: a client that closes
// without ever pushing must unblock the merge rather than wedge it.
TEST(ServerStressTest, SilentClientsNeverWedgeTheMerge) {
  const int64_t rounds = StressIters(50);
  for (int64_t round = 0; round < rounds; ++round) {
    constexpr int32_t kClients = 6;
    ShardInbox inbox(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int32_t c = 0; c < kClients; ++c) {
      threads.emplace_back([c, round, &inbox] {
        // Odd clients push one late-seq request; even clients only close.
        if (c % 2 == 1) {
          inbox.Push(c, {SeqRequest{static_cast<int64_t>(round * kClients + c),
                                    Request{0, 1}}});
        }
        inbox.Close(c);
      });
    }
    std::vector<SeqRequest> out(8);
    size_t total = 0;
    size_t got = 0;
    while ((got = inbox.PopReady(out.data(), out.size())) > 0) {
      total += got;
    }
    EXPECT_EQ(total, 3u) << "round " << round;
    for (std::thread& t : threads) t.join();
  }
}

}  // namespace
}  // namespace wmlp
