#include "engine/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "engine/request_source.h"
#include "engine/step_observers.h"
#include "registry/policy_registry.h"
#include "trace/generators.h"
#include "trace/trace_io.h"
#include "util/check.h"

namespace wmlp {
namespace {

bool SameResult(const SimResult& a, const SimResult& b) {
  return a.eviction_cost == b.eviction_cost && a.fetch_cost == b.fetch_cost &&
         a.hits == b.hits && a.misses == b.misses &&
         a.evictions == b.evictions && a.fetches == b.fetches;
}

Trace MultiLevelTrace(int64_t length = 600) {
  Instance inst(24, 6, 3,
                MakeWeights(24, 3, WeightModel::kLogUniform, 16.0, 11));
  return GenZipf(inst, length, 0.8, LevelMix::UniformMix(3), 5);
}

std::string TempTracePath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceSource, YieldsTheTraceInOrder) {
  const Trace t = MultiLevelTrace(50);
  TraceSource source(t);
  EXPECT_EQ(source.length_hint(), 50);
  Request r;
  for (Time i = 0; i < t.length(); ++i) {
    ASSERT_TRUE(source.Next(r));
    EXPECT_EQ(r, t.requests[static_cast<size_t>(i)]);
  }
  EXPECT_FALSE(source.Next(r));
  source.Reset();
  ASSERT_TRUE(source.Next(r));
  EXPECT_EQ(r, t.requests[0]);
}

TEST(Engine, MatchesSimulateForEveryRegistryPolicy) {
  const Trace multi = MultiLevelTrace();
  Instance flat = Instance::Uniform(24, 6);
  const Trace single = GenZipf(flat, 600, 0.8, LevelMix::AllLowest(1), 5);
  for (const auto& name : KnownPolicyNames()) {
    // marking is single-level-only (it CHECKs ell == 1 at Attach).
    const Trace& t = name == "marking" ? single : multi;
    PolicyPtr a = MakePolicyByName(name, 42);
    PolicyPtr b = MakePolicyByName(name, 42);
    ASSERT_NE(a, nullptr) << name;
    const SimResult via_simulate = Simulate(t, *a);
    TraceSource source(t);
    Engine engine(source, *b);
    EXPECT_TRUE(SameResult(via_simulate, engine.Run())) << name;
  }
}

TEST(Engine, StepAndRunForAreResumable) {
  const Trace t = MultiLevelTrace();
  PolicyPtr full = MakePolicyByName("landlord", 1);
  const SimResult whole = Simulate(t, *full);

  PolicyPtr stepped = MakePolicyByName("landlord", 1);
  TraceSource source(t);
  Engine engine(source, *stepped);
  EXPECT_TRUE(engine.Step());
  EXPECT_EQ(engine.time(), 1);
  EXPECT_EQ(engine.RunFor(99), 99);
  EXPECT_EQ(engine.time(), 100);
  // Mid-run state is inspectable and feasible.
  EXPECT_LE(engine.cache().size(), engine.cache().capacity());
  const SimResult partial = engine.result();
  EXPECT_EQ(partial.hits + partial.misses, 100);

  const SimResult final_result = engine.Run();
  EXPECT_TRUE(SameResult(whole, final_result));
  EXPECT_TRUE(engine.done());
  EXPECT_FALSE(engine.Step());
  EXPECT_EQ(engine.RunFor(10), 0);
}

TEST(StreamingFileSource, BitIdenticalToInMemoryReplay) {
  const Trace t = MultiLevelTrace();
  const std::string path = TempTracePath("stream_identical.wmlp");
  ASSERT_TRUE(WriteTraceFile(t, path));

  for (const auto& name : {"lru", "landlord", "randomized"}) {
    PolicyPtr mem_policy = MakePolicyByName(name, 9);
    const SimResult in_memory = Simulate(t, *mem_policy);

    std::string err;
    StreamingFileOptions opts;
    opts.chunk_size = 7;  // tiny chunk: force many refills
    auto source = StreamingFileSource::Open(path, &err, opts);
    ASSERT_NE(source, nullptr) << err;
    EXPECT_EQ(source->instance(), t.instance);
    EXPECT_EQ(source->length_hint(), t.length());

    PolicyPtr stream_policy = MakePolicyByName(name, 9);
    Engine engine(*source, *stream_policy);
    // Step one-by-one so the buffered bound is observable mid-run.
    while (engine.Step()) {
      ASSERT_LE(source->buffered(), source->chunk_size());
    }
    EXPECT_TRUE(SameResult(in_memory, engine.result())) << name;
  }
  std::remove(path.c_str());
}

TEST(StreamingFileSource, HoldsAtMostOneChunk) {
  Instance inst = Instance::Uniform(32, 4);
  const Trace t = GenZipf(inst, 5000, 0.7, LevelMix::AllLowest(1), 3);
  const std::string path = TempTracePath("stream_chunk.wmlp");
  ASSERT_TRUE(WriteTraceFile(t, path));

  StreamingFileOptions opts;
  opts.chunk_size = 64;
  auto source = StreamingFileSource::Open(path, nullptr, opts);
  ASSERT_NE(source, nullptr);
  Request r;
  int64_t served = 0;
  while (source->Next(r)) {
    ASSERT_LE(source->buffered(), 64);
    ++served;
  }
  EXPECT_EQ(served, t.length());
  std::remove(path.c_str());
}

TEST(StreamingFileSource, RejectsMalformedFiles) {
  const std::string path = TempTracePath("stream_bad.wmlp");
  {
    std::ofstream ofs(path);
    ofs << "not-a-trace\n";
  }
  std::string err;
  EXPECT_EQ(StreamingFileSource::Open(path, &err), nullptr);
  EXPECT_NE(err.find("magic"), std::string::npos);
  EXPECT_EQ(StreamingFileSource::Open(TempTracePath("missing.wmlp"), &err),
            nullptr);
  std::remove(path.c_str());
}

TEST(GeneratorSource, ZipfMatchesMaterializedGenerator) {
  Instance inst(40, 8, 2, MakeWeights(40, 2, WeightModel::kZipfPages, 8.0, 2));
  const Trace t = GenZipf(inst, 400, 0.9, LevelMix::UniformMix(2), 17);
  GeneratorSource source = GeneratorSource::Zipf(
      inst, 400, 0.9, LevelMix::UniformMix(2), 17);
  Request r;
  for (Time i = 0; i < t.length(); ++i) {
    ASSERT_TRUE(source.Next(r));
    ASSERT_EQ(r, t.requests[static_cast<size_t>(i)]) << "t=" << i;
  }
  EXPECT_FALSE(source.Next(r));
}

TEST(GeneratorSource, LoopMatchesMaterializedGenerator) {
  Instance inst = Instance::Uniform(9, 8);
  const Trace t = GenLoop(inst, 300, 9, LevelMix::AllLowest(1));
  GeneratorSource source =
      GeneratorSource::Loop(inst, 300, 9, LevelMix::AllLowest(1));
  Request r;
  for (Time i = 0; i < t.length(); ++i) {
    ASSERT_TRUE(source.Next(r));
    ASSERT_EQ(r, t.requests[static_cast<size_t>(i)]);
  }
  EXPECT_FALSE(source.Next(r));
}

TEST(GeneratorSource, DrivesTheEngineWithoutMaterializing) {
  Instance inst = Instance::Uniform(65, 64);
  PolicyPtr lru_gen = MakePolicyByName("lru", 1);
  GeneratorSource source =
      GeneratorSource::Loop(inst, 650, 65, LevelMix::AllLowest(1));
  Engine engine(source, *lru_gen);
  const SimResult streamed = engine.Run();

  PolicyPtr lru_mem = MakePolicyByName("lru", 1);
  const SimResult materialized =
      Simulate(GenLoop(inst, 650, 65, LevelMix::AllLowest(1)), *lru_mem);
  EXPECT_TRUE(SameResult(streamed, materialized));
  // The classic adversary: LRU faults on every request.
  EXPECT_EQ(streamed.misses, 650);
}

// --- Batched-vs-single equivalence battery ------------------------------
//
// The batching contract (docs/ARCHITECTURE.md §11): StepBatch serves its
// requests in exactly the per-request order Step() would, so every
// cost/count field, the CostMeter, and the fetch/evict event sequence are
// bitwise identical for any partition of the trace into batches. These
// tests are the contract's enforcement; they run in the default, audit
// (WMLP_AUDIT=ON), and TSan configurations.

struct ObservedRun {
  SimResult result;
  double fetch_cost = 0.0;
  double eviction_cost = 0.0;
  int64_t fetches = 0;
  int64_t evictions = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t steps = 0;
  std::vector<CacheEvent> events;
};

// Reference: the trace served one request per Step() through the pull
// path, with a CostMeter and an EventLogObserver attached.
ObservedRun SingleStepReference(const Trace& t, const std::string& name,
                                uint64_t seed) {
  ObservedRun run;
  PolicyPtr p = MakePolicyByName(name, seed);
  WMLP_CHECK(p != nullptr);
  CostMeter meter;
  EventLogObserver log(&run.events);
  MultiObserver obs({&meter, &log});
  TraceSource source(t);
  EngineOptions opts;
  opts.observer = &obs;
  Engine engine(source, *p, opts);
  while (engine.Step()) {
  }
  run.result = engine.result();
  run.fetch_cost = meter.fetch_cost();
  run.eviction_cost = meter.eviction_cost();
  run.fetches = meter.fetches();
  run.evictions = meter.evictions();
  run.hits = meter.hits();
  run.misses = meter.misses();
  run.steps = meter.steps();
  return run;
}

void ExpectRunsBitwiseEqual(const ObservedRun& ref, const ObservedRun& got,
                            const std::string& context) {
  EXPECT_TRUE(SameResult(ref.result, got.result)) << context;
  // Doubles compared with ==, deliberately: the contract is bitwise.
  EXPECT_EQ(ref.fetch_cost, got.fetch_cost) << context;
  EXPECT_EQ(ref.eviction_cost, got.eviction_cost) << context;
  EXPECT_EQ(ref.fetches, got.fetches) << context;
  EXPECT_EQ(ref.evictions, got.evictions) << context;
  EXPECT_EQ(ref.hits, got.hits) << context;
  EXPECT_EQ(ref.misses, got.misses) << context;
  EXPECT_EQ(ref.steps, got.steps) << context;
  ASSERT_EQ(ref.events.size(), got.events.size()) << context;
  for (size_t i = 0; i < ref.events.size(); ++i) {
    EXPECT_EQ(ref.events[i].t, got.events[i].t) << context << " event " << i;
    EXPECT_EQ(ref.events[i].kind, got.events[i].kind)
        << context << " event " << i;
    EXPECT_EQ(ref.events[i].page, got.events[i].page)
        << context << " event " << i;
    EXPECT_EQ(ref.events[i].level, got.events[i].level)
        << context << " event " << i;
  }
}

TEST(EngineBatchEquivalence, PushModeStepBatchMatchesSingleStep) {
  const Trace multi = MultiLevelTrace();
  Instance flat = Instance::Uniform(24, 6);
  const Trace single = GenZipf(flat, 600, 0.8, LevelMix::AllLowest(1), 5);
  for (const auto& name : KnownPolicyNames()) {
    const Trace& t = name == "marking" ? single : multi;
    const ObservedRun ref = SingleStepReference(t, name, 42);
    const int64_t n = t.length();
    for (const int64_t batch :
         {int64_t{1}, int64_t{2}, int64_t{7}, int64_t{64}, n}) {
      PolicyPtr p = MakePolicyByName(name, 42);
      ASSERT_NE(p, nullptr) << name;
      ObservedRun got;
      CostMeter meter;
      EventLogObserver log(&got.events);
      MultiObserver obs({&meter, &log});
      EngineOptions opts;
      opts.observer = &obs;
      Engine engine(t.instance, *p, opts);
      int64_t served = 0;
      for (int64_t i = 0; i < n; i += batch) {
        const int64_t m = std::min(batch, n - i);
        BatchResult br;
        engine.StepBatch(
            std::span<const Request>(t.requests.data() + i,
                                     static_cast<size_t>(m)),
            br);
        EXPECT_EQ(br.served, m);
        EXPECT_EQ(br.hits + br.misses, m);
        served += br.served;
      }
      EXPECT_EQ(served, n);
      EXPECT_TRUE(engine.done() || engine.time() == n);
      got.result = engine.result();
      got.fetch_cost = meter.fetch_cost();
      got.eviction_cost = meter.eviction_cost();
      got.fetches = meter.fetches();
      got.evictions = meter.evictions();
      got.hits = meter.hits();
      got.misses = meter.misses();
      got.steps = meter.steps();
      ExpectRunsBitwiseEqual(ref, got,
                             name + " batch=" + std::to_string(batch));
    }
  }
}

TEST(EngineBatchEquivalence, PullModeBatchKnobIsCostInvariant) {
  const Trace t = MultiLevelTrace();
  for (const auto& name : {"lru", "landlord", "waterfill", "randomized"}) {
    const ObservedRun ref = SingleStepReference(t, name, 7);
    for (const int64_t batch :
         {int64_t{1}, int64_t{3}, int64_t{100}, int64_t{4096}}) {
      PolicyPtr p = MakePolicyByName(name, 7);
      ObservedRun got;
      CostMeter meter;
      EventLogObserver log(&got.events);
      MultiObserver obs({&meter, &log});
      TraceSource source(t);
      EngineOptions opts;
      opts.observer = &obs;
      opts.batch = batch;
      Engine engine(source, *p, opts);
      got.result = engine.Run();
      got.fetch_cost = meter.fetch_cost();
      got.eviction_cost = meter.eviction_cost();
      got.fetches = meter.fetches();
      got.evictions = meter.evictions();
      got.hits = meter.hits();
      got.misses = meter.misses();
      got.steps = meter.steps();
      ExpectRunsBitwiseEqual(
          ref, got, std::string(name) + " pull batch=" + std::to_string(batch));
    }
  }
}

TEST(EngineBatchEquivalence, LatencyHistogramCountsEveryBatchedRequest) {
  const Trace t = MultiLevelTrace(500);
  PolicyPtr p = MakePolicyByName("landlord", 3);
  LatencyHistogram latency;
  TraceSource source(t);
  EngineOptions opts;
  opts.observer = &latency;
  opts.batch = 37;
  latency.Start();
  Engine engine(source, *p, opts);
  engine.Run();
  // OnBatchBegin/OnBatch amortize the clock reads but still book one
  // sample per request.
  EXPECT_EQ(latency.count(), t.length());
}

TEST(Observers, CostMeterMatchesSimResult) {
  const Trace t = MultiLevelTrace();
  PolicyPtr p = MakePolicyByName("landlord", 1);
  CostMeter meter;
  TraceSource source(t);
  EngineOptions opts;
  opts.observer = &meter;
  Engine engine(source, *p, opts);
  const SimResult res = engine.Run();
  EXPECT_DOUBLE_EQ(meter.fetch_cost(), res.fetch_cost);
  EXPECT_DOUBLE_EQ(meter.eviction_cost(), res.eviction_cost);
  EXPECT_EQ(meter.fetches(), res.fetches);
  EXPECT_EQ(meter.evictions(), res.evictions);
  EXPECT_EQ(meter.hits(), res.hits);
  EXPECT_EQ(meter.misses(), res.misses);
  EXPECT_EQ(meter.steps(), t.length());
}

TEST(Observers, EventLogObserverMatchesSimulateCompatShim) {
  const Trace t = MultiLevelTrace();
  std::vector<CacheEvent> via_shim;
  {
    PolicyPtr p = MakePolicyByName("lru", 1);
    SimOptions opts;
    opts.event_log = &via_shim;
    Simulate(t, *p, opts);
  }
  std::vector<CacheEvent> via_engine;
  {
    PolicyPtr p = MakePolicyByName("lru", 1);
    EventLogObserver log(&via_engine);
    TraceSource source(t);
    EngineOptions opts;
    opts.observer = &log;
    Engine engine(source, *p, opts);
    engine.Run();
  }
  ASSERT_EQ(via_shim.size(), via_engine.size());
  for (size_t i = 0; i < via_shim.size(); ++i) {
    EXPECT_EQ(via_shim[i].t, via_engine[i].t);
    EXPECT_EQ(via_shim[i].kind, via_engine[i].kind);
    EXPECT_EQ(via_shim[i].page, via_engine[i].page);
    EXPECT_EQ(via_shim[i].level, via_engine[i].level);
  }
}

TEST(Observers, MultiObserverFansOut) {
  const Trace t = MultiLevelTrace(200);
  CostMeter a, b;
  MultiObserver multi({&a, &b});
  PolicyPtr p = MakePolicyByName("fifo", 1);
  SimOptions opts;
  opts.observer = &multi;
  const SimResult res = Simulate(t, *p, opts);
  EXPECT_DOUBLE_EQ(a.eviction_cost(), res.eviction_cost);
  EXPECT_DOUBLE_EQ(b.eviction_cost(), res.eviction_cost);
  EXPECT_EQ(a.steps(), b.steps());
}

TEST(Observers, SimulateCombinesEventLogAndObserver) {
  const Trace t = MultiLevelTrace(200);
  std::vector<CacheEvent> log;
  CostMeter meter;
  PolicyPtr p = MakePolicyByName("lru", 1);
  SimOptions opts;
  opts.event_log = &log;
  opts.observer = &meter;
  const SimResult res = Simulate(t, *p, opts);
  EXPECT_DOUBLE_EQ(meter.eviction_cost(), res.eviction_cost);
  EXPECT_EQ(static_cast<int64_t>(log.size()), res.fetches + res.evictions);
}

TEST(Observers, LatencyHistogramRecordsEveryStep) {
  const Trace t = MultiLevelTrace();
  LatencyHistogram latency;
  PolicyPtr p = MakePolicyByName("landlord", 1);
  SimOptions opts;
  opts.observer = &latency;
  latency.Start();
  Simulate(t, *p, opts);
  EXPECT_EQ(latency.count(), t.length());
  EXPECT_GE(latency.Quantile(0.9), latency.Quantile(0.5));
  EXPECT_GE(static_cast<double>(latency.max_cycles()),
            latency.Quantile(0.99) * 0.0);  // quantiles are finite
  EXPECT_GT(latency.mean_cycles(), 0.0);
}

TEST(Observers, QuantileEdgeCases) {
  LatencyHistogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_EQ(empty.count(), 0);
}

}  // namespace
}  // namespace wmlp
