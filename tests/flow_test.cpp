#include <gtest/gtest.h>

#include "flow/min_cost_flow.h"

namespace wmlp {
namespace {

TEST(MinCostFlow, SingleArc) {
  MinCostFlow mcf(2);
  const int arc = mcf.AddArc(0, 1, 5, 2.0);
  const auto res = mcf.Solve(0, 1);
  EXPECT_EQ(res.flow, 5);
  EXPECT_NEAR(res.cost, 10.0, 1e-9);
  EXPECT_EQ(mcf.Flow(arc), 5);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // Two parallel paths 0->1->3 (cost 1+1) and 0->2->3 (cost 3+3), cap 1 each.
  MinCostFlow mcf(4);
  mcf.AddArc(0, 1, 1, 1.0);
  mcf.AddArc(1, 3, 1, 1.0);
  mcf.AddArc(0, 2, 1, 3.0);
  mcf.AddArc(2, 3, 1, 3.0);
  const auto one = mcf.Solve(0, 3, 1);
  EXPECT_EQ(one.flow, 1);
  EXPECT_NEAR(one.cost, 2.0, 1e-9);
}

TEST(MinCostFlow, FullFlowUsesBothPaths) {
  MinCostFlow mcf(4);
  mcf.AddArc(0, 1, 1, 1.0);
  mcf.AddArc(1, 3, 1, 1.0);
  mcf.AddArc(0, 2, 1, 3.0);
  mcf.AddArc(2, 3, 1, 3.0);
  const auto res = mcf.Solve(0, 3);
  EXPECT_EQ(res.flow, 2);
  EXPECT_NEAR(res.cost, 8.0, 1e-9);
}

TEST(MinCostFlow, StopsAtMaxFlow) {
  MinCostFlow mcf(2);
  mcf.AddArc(0, 1, 10, 1.0);
  const auto res = mcf.Solve(0, 1, 4);
  EXPECT_EQ(res.flow, 4);
  EXPECT_NEAR(res.cost, 4.0, 1e-9);
}

TEST(MinCostFlow, NegativeArcCosts) {
  // Profitable detour: 0->1 cost 1, or 0->2->1 with total cost -2.
  MinCostFlow mcf(3);
  mcf.AddArc(0, 1, 1, 1.0);
  mcf.AddArc(0, 2, 1, -1.0);
  mcf.AddArc(2, 1, 1, -1.0);
  const auto res = mcf.Solve(0, 1, 1);
  EXPECT_EQ(res.flow, 1);
  EXPECT_NEAR(res.cost, -2.0, 1e-9);
}

TEST(MinCostFlow, ResidualReroutes) {
  // Classic case where the second augmentation must push back over the
  // first path's arc: 0->1 (1, 0), 1->3 (1, 0), 0->2 (1, 2), 2->1 via
  // residual... construct: arcs 0->1 cap1 cost0; 0->2 cap1 cost2;
  // 1->2 cap1 cost0; 1->3 cap1 cost2; 2->3 cap1 cost0.
  MinCostFlow mcf(4);
  mcf.AddArc(0, 1, 1, 0.0);
  mcf.AddArc(0, 2, 1, 2.0);
  mcf.AddArc(1, 2, 1, 0.0);
  mcf.AddArc(1, 3, 1, 2.0);
  mcf.AddArc(2, 3, 1, 0.0);
  const auto res = mcf.Solve(0, 3);
  EXPECT_EQ(res.flow, 2);
  // Optimal: 0->1->2->3 (0) and 0->2? cap of 2->3 is 1... flow 2 needs
  // 0->1->3 (2) + 0->2->3 (2) = 4, or 0->1->2->3 (0) + 0->2 blocked ->
  // 0->2 then 2->3 full: must use 1->3: total = 0 + 2+2 = 4.
  EXPECT_NEAR(res.cost, 4.0, 1e-9);
}

TEST(MinCostFlow, DisconnectedReturnsZero) {
  MinCostFlow mcf(3);
  mcf.AddArc(0, 1, 1, 1.0);
  const auto res = mcf.Solve(0, 2);
  EXPECT_EQ(res.flow, 0);
  EXPECT_EQ(res.cost, 0.0);
}

TEST(MinCostFlow, AddNode) {
  MinCostFlow mcf(1);
  const int32_t v = mcf.AddNode();
  EXPECT_EQ(v, 1);
  EXPECT_EQ(mcf.num_nodes(), 2);
  mcf.AddArc(0, v, 3, 1.5);
  const auto res = mcf.Solve(0, v);
  EXPECT_EQ(res.flow, 3);
  EXPECT_NEAR(res.cost, 4.5, 1e-9);
}

TEST(MinCostFlow, PathNetworkWithIntervalArcs) {
  // Mimics the weighted-caching OPT network: path 0..3 cap 1 cost 0,
  // interval arcs with negative cost; best single unit takes the most
  // profitable chain of disjoint intervals.
  MinCostFlow mcf(4);
  for (int t = 0; t < 3; ++t) mcf.AddArc(t, t + 1, 1, 0.0);
  mcf.AddArc(0, 2, 1, -5.0);  // interval A
  mcf.AddArc(2, 3, 1, -4.0);  // interval B (disjoint with A)
  mcf.AddArc(0, 3, 1, -8.0);  // interval C overlapping both
  const auto res = mcf.Solve(0, 3, 1);
  EXPECT_EQ(res.flow, 1);
  EXPECT_NEAR(res.cost, -9.0, 1e-9);  // A + B beats C
}

TEST(MinCostFlow, FlowPerArcQuery) {
  MinCostFlow mcf(3);
  const int a = mcf.AddArc(0, 1, 2, 1.0);
  const int b = mcf.AddArc(1, 2, 1, 1.0);
  mcf.Solve(0, 2);
  EXPECT_EQ(mcf.Flow(a), 1);  // bottlenecked by b
  EXPECT_EQ(mcf.Flow(b), 1);
}

}  // namespace
}  // namespace wmlp
