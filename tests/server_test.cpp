// Proof battery for the sharded serving layer (src/server):
//   * ShardMap structural invariants (partition, capacity split).
//   * Single-shard lockstep equivalence: ServeTrace(shards=1) is bitwise
//     cost-identical to the plain Engine run, for every registry policy
//     and several client counts.
//   * Multi-shard determinism: all cost/count fields are bitwise
//     identical across client counts, batch sizes, and repeated runs.
//   * Config validation rejects out-of-range values.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/request_source.h"
#include "registry/policy_registry.h"
#include "server/inbox.h"
#include "server/server.h"
#include "server/sharding.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

Trace MakeZipfTrace(int32_t n, int32_t k, int32_t ell, int64_t length,
                    uint64_t seed) {
  Instance inst(n, k, ell,
                MakeWeights(n, ell, WeightModel::kZipfPages, 8.0, seed));
  return GenZipf(std::move(inst), length, 0.9,
                 ell == 1 ? LevelMix::AllLowest(1) : LevelMix::UniformMix(ell),
                 seed + 1);
}

// Bitwise equality of every cost/count field (doubles compared with ==,
// deliberately: the determinism contract is bitwise, not approximate).
void ExpectSameResult(const SimResult& a, const SimResult& b,
                      const std::string& context) {
  EXPECT_EQ(a.eviction_cost, b.eviction_cost) << context;
  EXPECT_EQ(a.fetch_cost, b.fetch_cost) << context;
  EXPECT_EQ(a.hits, b.hits) << context;
  EXPECT_EQ(a.misses, b.misses) << context;
  EXPECT_EQ(a.evictions, b.evictions) << context;
  EXPECT_EQ(a.fetches, b.fetches) << context;
}

TEST(ShardMapTest, PartitionsEveryPageExactlyOnce) {
  const Trace trace = MakeZipfTrace(97, 24, 3, 1, 5);
  const ShardMap map(trace.instance, 8);
  std::vector<int32_t> seen(97, 0);
  for (int32_t s = 0; s < map.num_shards(); ++s) {
    for (const PageId p : map.shard_pages(s)) {
      EXPECT_EQ(map.shard_of(p), s);
      EXPECT_EQ(map.global_id(s, map.local_id(p)), p);
      ++seen[static_cast<size_t>(p)];
    }
  }
  for (const int32_t count : seen) EXPECT_EQ(count, 1);
}

TEST(ShardMapTest, CapacitySumsToKAndNonemptyShardsGetASlot) {
  for (const int32_t shards : {1, 2, 3, 7, 16}) {
    const Trace trace = MakeZipfTrace(50, 17, 2, 1, 9);
    const ShardMap map(trace.instance, shards);
    int64_t total = 0;
    for (int32_t s = 0; s < shards; ++s) {
      total += map.shard_capacity(s);
      if (!map.shard_empty(s)) {
        EXPECT_GE(map.shard_capacity(s), 1) << "shard " << s;
        const Instance& inst = map.shard_instance(s);
        EXPECT_EQ(inst.num_pages(),
                  static_cast<int32_t>(map.shard_pages(s).size()));
        EXPECT_EQ(inst.cache_size(), map.shard_capacity(s));
      } else {
        EXPECT_EQ(map.shard_capacity(s), 0) << "shard " << s;
      }
    }
    EXPECT_EQ(total, 17) << "shards=" << shards;
  }
}

TEST(ShardMapTest, ShardInstanceKeepsGlobalWeightRows) {
  const Trace trace = MakeZipfTrace(40, 10, 3, 1, 11);
  const ShardMap map(trace.instance, 4);
  for (int32_t s = 0; s < 4; ++s) {
    if (map.shard_empty(s)) continue;
    const Instance& inst = map.shard_instance(s);
    for (PageId local = 0; local < inst.num_pages(); ++local) {
      const PageId global = map.global_id(s, local);
      for (Level i = 1; i <= inst.num_levels(); ++i) {
        EXPECT_EQ(inst.weight(local, i), trace.instance.weight(global, i));
      }
    }
  }
}

TEST(ShardMapTest, SingleShardIsTheIdentity) {
  const Trace trace = MakeZipfTrace(30, 8, 2, 1, 3);
  const ShardMap map(trace.instance, 1);
  for (PageId p = 0; p < 30; ++p) {
    EXPECT_EQ(map.shard_of(p), 0);
    EXPECT_EQ(map.local_id(p), p);
  }
  EXPECT_EQ(map.shard_capacity(0), 8);
  EXPECT_EQ(map.shard_instance(0), trace.instance);
}

TEST(ServeConfigTest, RejectsOutOfRangeValues) {
  const Trace trace = MakeZipfTrace(16, 8, 1, 1, 2);
  ServeOptions options;
  options.policy = "lru";

  options.shards = 0;
  EXPECT_FALSE(ValidateServeConfig(trace.instance, options).empty());
  options.shards = -3;
  EXPECT_FALSE(ValidateServeConfig(trace.instance, options).empty());
  options.shards = kMaxShards + 1;
  EXPECT_FALSE(ValidateServeConfig(trace.instance, options).empty());

  options.shards = 2;
  options.clients = 0;
  EXPECT_FALSE(ValidateServeConfig(trace.instance, options).empty());
  options.clients = kMaxClients + 1;
  EXPECT_FALSE(ValidateServeConfig(trace.instance, options).empty());

  options.clients = 1;
  options.batch = 0;
  EXPECT_FALSE(ValidateServeConfig(trace.instance, options).empty());
  options.batch = kMaxBatch + 1;
  EXPECT_FALSE(ValidateServeConfig(trace.instance, options).empty());

  options.batch = 16;
  options.policy = "no-such-policy";
  EXPECT_FALSE(ValidateServeConfig(trace.instance, options).empty());

  options.policy = "lru";
  EXPECT_TRUE(ValidateServeConfig(trace.instance, options).empty());
}

TEST(ServeConfigTest, RejectsMoreNonemptyShardsThanCapacity) {
  // k = 2 cannot give three nonempty shards a slot each. With n = 64 and
  // 8 shards, every shard is nonempty with overwhelming probability under
  // the SplitMix64 partition (checked structurally, not probabilistically:
  // the validation counts the actual nonempty shards).
  Instance inst = Instance::Uniform(64, 2);
  ServeOptions options;
  options.shards = 8;
  const std::string error = ValidateServeConfig(inst, options);
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find("cannot give"), std::string::npos) << error;
}

// The headline equivalence: one shard, any client count, every registry
// policy — bitwise the same cost as the plain Engine on the same trace.
TEST(ServeEquivalenceTest, SingleShardMatchesEngineForEveryPolicy) {
  const Trace trace = MakeZipfTrace(48, 12, 2, 3000, 21);
  for (const std::string& name : KnownPolicyNames()) {
    if (name == "marking") continue;  // single-level only; covered below
    PolicyPtr policy = MakePolicyByName(name, DeriveSeed(77, 0));
    TraceSource source(trace);
    Engine engine(source, *policy);
    const SimResult mono = engine.Run();

    for (const int32_t clients : {1, 3}) {
      ServeOptions options;
      options.shards = 1;
      options.clients = clients;
      options.batch = 61;  // deliberately not a divisor of anything
      options.policy = name;
      options.seed = 77;
      const ServeReport report = ServeTrace(trace, options);
      ExpectSameResult(report.totals, mono,
                       name + " clients=" + std::to_string(clients));
      ASSERT_EQ(report.shards.size(), 1u);
      ExpectSameResult(report.shards[0].result, mono, name + " shard0");
      EXPECT_EQ(report.requests, trace.length());
    }
  }
}

TEST(ServeEquivalenceTest, SingleShardMatchesEngineSingleLevel) {
  const Trace trace = MakeZipfTrace(40, 10, 1, 2000, 13);
  for (const std::string& name : KnownPolicyNames()) {
    PolicyPtr policy = MakePolicyByName(name, DeriveSeed(5, 0));
    TraceSource source(trace);
    Engine engine(source, *policy);
    const SimResult mono = engine.Run();

    ServeOptions options;
    options.shards = 1;
    options.clients = 2;
    options.batch = 7;
    options.policy = name;
    options.seed = 5;
    const ServeReport report = ServeTrace(trace, options);
    ExpectSameResult(report.totals, mono, name);
  }
}

// Multi-shard determinism: for fixed (trace, policy, seed, shards), the
// client count and batch size must not change a single cost/count bit.
TEST(ServeDeterminismTest, InvariantToClientCountAndBatchSize) {
  const Trace trace = MakeZipfTrace(64, 16, 2, 4000, 31);
  for (const std::string& name :
       {std::string("lru"), std::string("landlord"), std::string("waterfill"),
        std::string("randomized")}) {
    ServeOptions base;
    base.shards = 4;
    base.policy = name;
    base.seed = 99;
    base.clients = 1;
    base.batch = 256;
    const ServeReport reference = ServeTrace(trace, base);

    for (const int32_t clients : {2, 3, 8}) {
      for (const int64_t batch : {int64_t{1}, int64_t{37}, int64_t{1024}}) {
        ServeOptions options = base;
        options.clients = clients;
        options.batch = batch;
        const ServeReport report = ServeTrace(trace, options);
        const std::string context = name + " clients=" +
                                    std::to_string(clients) + " batch=" +
                                    std::to_string(batch);
        ExpectSameResult(report.totals, reference.totals, context);
        ASSERT_EQ(report.shards.size(), reference.shards.size());
        for (size_t s = 0; s < report.shards.size(); ++s) {
          ExpectSameResult(report.shards[s].result,
                           reference.shards[s].result,
                           context + " shard " + std::to_string(s));
          EXPECT_EQ(report.shards[s].requests,
                    reference.shards[s].requests);
        }
      }
    }
  }
}

// Serve-side batching contract: engine_batch only changes how many
// requests each worker hands to StepBatch per lock acquisition. The whole
// report — totals and every per-shard row, rendered to CSV at full double
// precision — must be byte-identical across engine_batch values, for every
// registry policy.
std::string ReportCsv(const ServeReport& report) {
  std::ostringstream os;
  os.precision(17);
  os << "requests," << report.requests << "\n";
  os << "eviction_cost," << report.totals.eviction_cost << "\n";
  os << "fetch_cost," << report.totals.fetch_cost << "\n";
  os << "hits," << report.totals.hits << "\n";
  os << "misses," << report.totals.misses << "\n";
  os << "evictions," << report.totals.evictions << "\n";
  os << "fetches," << report.totals.fetches << "\n";
  for (size_t s = 0; s < report.shards.size(); ++s) {
    const ShardReport& sr = report.shards[s];
    os << "shard" << s << "," << sr.requests << ","
       << sr.result.eviction_cost << "," << sr.result.fetch_cost << ","
       << sr.result.hits << "," << sr.result.misses << ","
       << sr.result.evictions << "," << sr.result.fetches << "\n";
  }
  return os.str();
}

TEST(ServeDeterminismTest, EngineBatchLeavesServeCsvByteIdentical) {
  const Trace trace = MakeZipfTrace(64, 16, 2, 4000, 23);
  for (const auto& name : KnownPolicyNames()) {
    if (name == "marking") continue;  // single-level-only (ell == 2 here)
    ServeOptions base;
    base.shards = 3;
    base.clients = 2;
    base.batch = 64;
    base.policy = name;
    base.seed = 7;
    base.engine_batch = 1;  // reference: worker single-steps
    const std::string reference = ReportCsv(ServeTrace(trace, base));
    for (const int64_t engine_batch :
         {int64_t{2}, int64_t{7}, int64_t{64}, int64_t{4096}}) {
      ServeOptions options = base;
      options.engine_batch = engine_batch;
      EXPECT_EQ(ReportCsv(ServeTrace(trace, options)), reference)
          << name << " engine_batch=" << engine_batch;
    }
  }
}

TEST(ServeDeterminismTest, RepeatedRunsAreIdentical) {
  const Trace trace = MakeZipfTrace(32, 8, 3, 2500, 17);
  ServeOptions options;
  options.shards = 3;
  options.clients = 4;
  options.batch = 19;
  options.policy = "randomized";
  options.seed = 1234;
  const ServeReport a = ServeTrace(trace, options);
  const ServeReport b = ServeTrace(trace, options);
  ExpectSameResult(a.totals, b.totals, "repeat");
  for (size_t s = 0; s < a.shards.size(); ++s) {
    ExpectSameResult(a.shards[s].result, b.shards[s].result,
                     "repeat shard " + std::to_string(s));
  }
}

TEST(ServeTraceTest, EmptyTraceProducesZeroReport) {
  Trace trace = MakeZipfTrace(16, 8, 2, 100, 4);
  trace.requests.clear();
  ServeOptions options;
  options.shards = 4;
  options.clients = 3;
  const ServeReport report = ServeTrace(trace, options);
  EXPECT_EQ(report.requests, 0);
  EXPECT_EQ(report.totals.eviction_cost, 0.0);
  EXPECT_EQ(report.totals.hits + report.totals.misses, 0);
}

TEST(ServeTraceTest, RequestCountsPartitionTheTrace) {
  const Trace trace = MakeZipfTrace(80, 20, 2, 5000, 8);
  ServeOptions options;
  options.shards = 8;
  options.clients = 4;
  options.policy = "lru";
  const ServeReport report = ServeTrace(trace, options);
  int64_t routed = 0;
  for (const ShardReport& sr : report.shards) routed += sr.requests;
  EXPECT_EQ(routed, trace.length());
  EXPECT_EQ(report.totals.hits + report.totals.misses, trace.length());
}

TEST(ServeTraceTest, LatencyHistogramCoversEveryRequest) {
  const Trace trace = MakeZipfTrace(32, 8, 2, 1500, 6);
  ServeOptions options;
  options.shards = 2;
  options.clients = 2;
  options.collect_latency = true;
  const ServeReport report = ServeTrace(trace, options);
  // Batched serving measures whole batches (OnBatchBegin arms, OnBatch
  // books elapsed/n for each of the n requests), so every routed request
  // lands in the merged histogram.
  EXPECT_EQ(report.latency.count(), trace.length());
  EXPECT_GT(report.latency.Quantile(0.5), 0.0);
}

// Inbox-level ordering: whatever the push interleaving, PopReady yields
// the global sequence order once per seq.
TEST(ShardInboxTest, MergesClientStreamsInSequenceOrder) {
  ShardInbox inbox(3);
  // Client 0 owns seqs {0, 3, 6}, client 1 {1, 4}, client 2 {2, 5, 7}.
  inbox.Push(0, {SeqRequest{0, {0, 1}}, SeqRequest{3, {3, 1}}});
  inbox.Push(2, {SeqRequest{2, {2, 1}}, SeqRequest{5, {5, 1}},
                 SeqRequest{7, {7, 1}}});
  inbox.Push(1, {SeqRequest{1, {1, 1}}, SeqRequest{4, {4, 1}}});
  inbox.Push(0, {SeqRequest{6, {6, 1}}});
  inbox.Close(0);
  inbox.Close(1);
  inbox.Close(2);

  std::vector<SeqRequest> out;
  SeqRequest buf[3];
  size_t got = 0;
  while ((got = inbox.PopReady(buf, 3)) > 0) {
    out.insert(out.end(), buf, buf + got);
  }
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].seq, static_cast<int64_t>(i));
  }
  EXPECT_TRUE(inbox.drained());
}

TEST(ShardInboxTest, HoldsBackUntilEveryOpenClientHasPushed) {
  ShardInbox inbox(2);
  inbox.Push(0, {SeqRequest{5, {0, 1}}});
  // Client 1 has not pushed and not closed: seq 5 must not be released
  // yet (a smaller seq could still arrive from client 1). Closing client
  // 1 proves it cannot, releasing seq 5.
  inbox.Close(1);
  SeqRequest out[16];
  EXPECT_EQ(inbox.PopReady(out, 16), 1u);
  EXPECT_EQ(out[0].seq, 5);
  inbox.Close(0);
  EXPECT_EQ(inbox.PopReady(out, 16), 0u);
}

}  // namespace
}  // namespace wmlp
