// Footnote 1 of the paper: the fetch-cost and eviction-cost conventions
// agree up to the additive weight of the final cache contents. Every copy
// fetched is either evicted later (charged to both meters at the same
// w(p, i)) or still cached at the end, so for any policy run from an empty
// cache:
//
//     fetch_cost == eviction_cost + sum_{p in final cache} w(p, level(p)).
//
// Checked here for every registry policy on fuzzed instances through a
// CostMeter observer (which must itself agree with the engine's meters).
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/engine.h"
#include "engine/step_observers.h"
#include "registry/policy_registry.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

Cost FinalCacheWeight(const Engine& engine) {
  Cost total = 0.0;
  const CacheState& cache = engine.cache();
  for (PageId p : cache.pages()) {
    total += engine.instance().weight(p, cache.level_of(p));
  }
  return total;
}

TEST(CostConvention, HoldsForEveryRegistryPolicyOnFuzzedInstances) {
  Rng rng(0xFEED);
  for (int round = 0; round < 8; ++round) {
    const int32_t n = static_cast<int32_t>(rng.NextInt(6, 40));
    const int32_t k = static_cast<int32_t>(rng.NextInt(2, std::max(2, n / 2)));
    const int32_t ell = static_cast<int32_t>(rng.NextInt(1, 3));
    const auto model = static_cast<WeightModel>(rng.NextInt(0, 3));
    Instance inst(n, k, ell,
                  MakeWeights(n, ell, model, 1.0 + rng.NextDouble() * 30.0,
                              rng.Next()));
    const Trace trace =
        GenZipf(inst, 400, rng.NextDouble() * 1.2,
                ell == 1 ? LevelMix::AllLowest(1) : LevelMix::UniformMix(ell),
                rng.Next());

    for (const auto& name : KnownPolicyNames()) {
      // marking is single-level-only; it is still covered by the ell == 1
      // rounds of the fuzz loop.
      if (name == "marking" && ell > 1) continue;
      PolicyPtr policy = MakePolicyByName(name, rng.Next());
      ASSERT_NE(policy, nullptr) << name;
      CostMeter meter;
      TraceSource source(trace);
      EngineOptions opts;
      opts.observer = &meter;
      Engine engine(source, *policy, opts);
      const SimResult res = engine.Run();

      // The observer and the engine's own meters must agree exactly.
      ASSERT_DOUBLE_EQ(meter.fetch_cost(), res.fetch_cost) << name;
      ASSERT_DOUBLE_EQ(meter.eviction_cost(), res.eviction_cost) << name;

      const Cost residual = FinalCacheWeight(engine);
      const Cost scale = std::max(1.0, res.fetch_cost);
      EXPECT_NEAR(res.fetch_cost, res.eviction_cost + residual,
                  1e-9 * scale)
          << name << " round=" << round << " (n=" << n << " k=" << k
          << " ell=" << ell << ")";
    }
  }
}

}  // namespace
}  // namespace wmlp
