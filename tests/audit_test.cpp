// Audit-layer tests (util/audit.h, sim/sim_audit.h, core/core_audit.h).
//
// Auditors that cannot fail are dead code: every negative test here feeds
// an auditor deliberately-corrupted state through a test double and
// asserts it fires. Positive tests run real policies end to end with the
// auditors armed and a throwing handler installed, so a miscalibrated
// tolerance shows up as a test failure rather than a silent pass.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/core_audit.h"
#include "core/fractional.h"
#include "core/rounding_multilevel.h"
#include "core/rounding_weighted.h"
#include "core/waterfill.h"
#include "engine/engine.h"
#include "engine/request_source.h"
#include "registry/policy_registry.h"
#include "sim/sim_audit.h"
#include "trace/generators.h"
#include "util/audit.h"

namespace wmlp {
namespace {

[[noreturn]] void ThrowingHandler(const std::string& message) {
  throw std::runtime_error(message);
}

Instance TwoLevelInstance() {
  return Instance(4, 2, 2, {{8.0, 2.0}, {8.0, 2.0}, {4.0, 1.0}, {4.0, 1.0}});
}

Trace SmallZipfTrace(int32_t n, int32_t k, int32_t ell) {
  const Instance inst(
      n, k, ell,
      MakeWeights(n, ell, WeightModel::kGeometricLevels, 8.0, /*seed=*/7));
  const LevelMix mix =
      ell == 1 ? LevelMix::AllLowest(1) : LevelMix::UniformMix(ell);
  return GenZipf(inst, /*length=*/400, /*alpha=*/0.8, mix, /*seed=*/11);
}

// A FractionalPolicy wrapper whose reported U values can be corrupted
// after the fact: the inner policy stays consistent, but consumers that
// recompute from U (the rounding consistency auditors, the fractional
// state auditor) see a state that no longer matches their bookkeeping.
class CorruptibleFractional final : public FractionalPolicy {
 public:
  explicit CorruptibleFractional(FractionalPolicyPtr inner)
      : inner_(std::move(inner)) {}

  void Attach(const Instance& instance) override {
    inner_->Attach(instance);
  }
  void Serve(Time t, const Request& r) override { inner_->Serve(t, r); }
  double U(PageId p, Level i) const override {
    const double u = inner_->U(p, i);
    return corrupt_ ? u * 0.5 : u;
  }
  const std::vector<PageId>& last_changed() const override {
    return inner_->last_changed();
  }
  Cost lp_cost() const override { return inner_->lp_cost(); }
  std::string name() const override { return "corruptible"; }

  void set_corrupt(bool corrupt) { corrupt_ = corrupt; }

 private:
  FractionalPolicyPtr inner_;
  bool corrupt_ = false;
};

// A FractionalPolicy test double reporting arbitrary fixed U values.
class FixedFractional final : public FractionalPolicy {
 public:
  FixedFractional(std::vector<double> u, int32_t ell)
      : u_(std::move(u)), ell_(ell) {}

  void Attach(const Instance&) override {}
  void Serve(Time, const Request&) override {}
  double U(PageId p, Level i) const override {
    return u_[static_cast<size_t>(p) * static_cast<size_t>(ell_) +
              static_cast<size_t>(i - 1)];
  }
  const std::vector<PageId>& last_changed() const override {
    return changed_;
  }
  Cost lp_cost() const override { return 0.0; }
  std::string name() const override { return "fixed"; }

 private:
  std::vector<double> u_;
  int32_t ell_;
  std::vector<PageId> changed_;
};

class AuditTest : public ::testing::Test {
 protected:
  audit::ScopedFailureHandler handler_{ThrowingHandler};
};

// ---- Cache-state auditor -------------------------------------------------

TEST_F(AuditTest, CleanCacheStatePasses) {
  const Instance inst = TwoLevelInstance();
  CacheState state(inst);
  state.Insert(0, 1);
  state.Insert(2, 2);
  EXPECT_NO_THROW(audit::AuditCacheState(inst, state));
}

TEST_F(AuditTest, OverfullCacheFires) {
  const Instance inst = Instance::Uniform(4, 1);
  CacheState state(inst);
  state.Insert(0, 1);
  state.Insert(1, 1);  // CacheOps may overfill transiently; audit must see it
  EXPECT_THROW(audit::AuditCacheState(inst, state), std::runtime_error);
}

TEST_F(AuditTest, InvalidCachedLevelFires) {
  const Instance inst = Instance::Uniform(4, 2);
  CacheState state(inst);
  state.Insert(0, 3);  // ell == 1: no such level
  EXPECT_THROW(audit::AuditCacheState(inst, state), std::runtime_error);
}

TEST_F(AuditTest, CapacityMismatchFires) {
  const Instance inst = Instance::Uniform(4, 2);
  const Instance other = Instance::Uniform(4, 3);
  CacheState state(other);
  EXPECT_THROW(audit::AuditCacheState(inst, state), std::runtime_error);
}

// ---- Cost-convention auditor ---------------------------------------------

TEST_F(AuditTest, CostConventionHoldsOnRealRun) {
  const Trace trace = SmallZipfTrace(12, 4, 2);
  WaterfillPolicy policy;
  TraceSource source(trace);
  Engine engine(source, policy);
  while (engine.Step()) {
    audit::AuditCacheState(trace.instance, engine.cache());
    audit::AuditCostConvention(trace.instance, engine.cache(),
                               engine.ops().fetch_cost(),
                               engine.ops().eviction_cost());
    policy.AuditState(engine.cache());
  }
}

TEST_F(AuditTest, CostConventionFiresOnWrongTotals) {
  const Instance inst = TwoLevelInstance();
  CacheState state(inst);
  state.Insert(0, 1);  // resident weight 8
  EXPECT_NO_THROW(audit::AuditCostConvention(inst, state, 8.0, 0.0));
  // Fetch meter under-charged: fetch - evict != resident.
  EXPECT_THROW(audit::AuditCostConvention(inst, state, 5.0, 0.0),
               std::runtime_error);
  // Eviction meter over-charged.
  EXPECT_THROW(audit::AuditCostConvention(inst, state, 8.0, 3.0),
               std::runtime_error);
}

// ---- Fractional-state auditor --------------------------------------------

TEST_F(AuditTest, FractionalAuditPassesOnRealPolicy) {
  const Trace trace = SmallZipfTrace(10, 3, 2);
  FractionalMlp frac;
  frac.Attach(trace.instance);
  Time t = 0;
  for (const Request& r : trace.requests) {
    frac.Serve(t++, r);
    audit::AuditFractionalState(trace.instance, frac);
    audit::AuditFractionalServed(trace.instance, frac, r);
  }
}

TEST_F(AuditTest, FractionalOutOfRangeUFires) {
  const Instance inst = Instance::Uniform(3, 1);
  const FixedFractional frac({1.5, 1.0, 1.0}, 1);
  EXPECT_THROW(audit::AuditFractionalState(inst, frac),
               std::runtime_error);
}

TEST_F(AuditTest, FractionalNonMonotoneLevelsFire) {
  const Instance inst = TwoLevelInstance();
  // u(p, 2) > u(p, 1): suffix mass would be negative.
  const FixedFractional frac({0.2, 0.8, 1, 1, 1, 1, 1, 1}, 2);
  EXPECT_THROW(audit::AuditFractionalState(inst, frac),
               std::runtime_error);
}

TEST_F(AuditTest, FractionalInfeasibleMassFires) {
  const Instance inst = Instance::Uniform(4, 2);
  // All pages fully cached: mass 4 > k = 2, absent mass 0 < n - k = 2.
  const FixedFractional frac({0.0, 0.0, 0.0, 0.0}, 1);
  EXPECT_THROW(audit::AuditFractionalState(inst, frac),
               std::runtime_error);
}

TEST_F(AuditTest, FractionalUnservedRequestFires) {
  const Instance inst = Instance::Uniform(4, 2);
  const FixedFractional frac({1.0, 0.0, 1.0, 0.0}, 1);
  const Request r{0, 1};
  EXPECT_THROW(audit::AuditFractionalServed(inst, frac, r),
               std::runtime_error);
}

// ---- Waterfill self-audit ------------------------------------------------

TEST_F(AuditTest, WaterfillAuditFiresOnForeignCache) {
  const Trace trace = SmallZipfTrace(12, 4, 1);
  WaterfillPolicy policy;
  TraceSource source(trace);
  Engine engine(source, policy);
  engine.Run();
  EXPECT_NO_THROW(policy.AuditState(engine.cache()));
  // A cache holding a copy the policy never fetched: heap and cache
  // disagree, exactly the corruption the auditor exists to catch.
  CacheState foreign(trace.instance);
  foreign.Insert(0, 1);
  foreign.Insert(1, 1);
  EXPECT_THROW(policy.AuditState(foreign), std::runtime_error);
}

// ---- Rounding consistency + reset postcondition auditors -----------------

TEST_F(AuditTest, WeightedRoundingConsistencyFiresAfterCorruption) {
  const Trace trace = SmallZipfTrace(10, 3, 1);
  auto owned = std::make_unique<CorruptibleFractional>(
      std::make_unique<FractionalMlp>());
  CorruptibleFractional* fractional = owned.get();
  RoundedWeightedPaging policy(std::move(owned), /*seed=*/5);
  TraceSource source(trace);
  Engine engine(source, policy);
  engine.Run();
  EXPECT_NO_THROW(policy.CheckConsistency(engine.ops(), trace.length()));
  fractional->set_corrupt(true);
  EXPECT_THROW(policy.CheckConsistency(engine.ops(), trace.length()),
               std::runtime_error);
}

TEST_F(AuditTest, MultiLevelRoundingConsistencyFiresAfterCorruption) {
  const Trace trace = SmallZipfTrace(10, 3, 2);
  auto owned = std::make_unique<CorruptibleFractional>(
      std::make_unique<FractionalMlp>());
  CorruptibleFractional* fractional = owned.get();
  RoundedMultiLevel policy(std::move(owned), /*seed=*/5);
  TraceSource source(trace);
  Engine engine(source, policy);
  engine.Run();
  EXPECT_NO_THROW(policy.CheckConsistency(engine.ops(), trace.length()));
  fractional->set_corrupt(true);
  EXPECT_THROW(policy.CheckConsistency(engine.ops(), trace.length()),
               std::runtime_error);
}

// ---- Handler machinery ---------------------------------------------------

TEST(AuditHandlerTest, ScopedHandlerRestoresPrevious) {
  audit::SetFailureHandler(nullptr);
  {
    audit::ScopedFailureHandler scoped(ThrowingHandler);
    EXPECT_THROW(audit::Fail("inner"), std::runtime_error);
  }
  // Restored to the aborting default.
  EXPECT_DEATH(audit::Fail("outer"), "WMLP_AUDIT failed: outer");
}

TEST(AuditHandlerTest, DefaultHandlerAborts) {
  const Instance inst = Instance::Uniform(2, 1);
  CacheState state(inst);
  state.Insert(0, 1);
  state.Insert(1, 1);
  EXPECT_DEATH(audit::AuditCacheState(inst, state), "WMLP_AUDIT failed");
}

// ---- Every registry policy is audit-clean end to end ---------------------

TEST_F(AuditTest, AllRegistryPoliciesAuditCleanPerStep) {
  const Trace trace = SmallZipfTrace(12, 4, 1);
  for (const std::string& name : KnownPolicyNames()) {
    SCOPED_TRACE(name);
    const PolicyPtr policy = MakePolicyByName(name, /*seed=*/3);
    ASSERT_NE(policy, nullptr);
    TraceSource source(trace);
    Engine engine(source, *policy);
    while (engine.Step()) {
      audit::AuditCacheState(trace.instance, engine.cache());
      audit::AuditCostConvention(trace.instance, engine.cache(),
                                 engine.ops().fetch_cost(),
                                 engine.ops().eviction_cost());
    }
  }
}

}  // namespace
}  // namespace wmlp
