// Kernel-vs-scalar lockstep battery (docs/ARCHITECTURE.md §13).
//
// The SIMD == scalar contract is *bitwise*: every kernel entry point
// must return exactly the doubles its *BatchScalar twin returns, for
// every input shape — full blocks, every tail length, denormals, signed
// zeros, and near-degenerate group aggregates. The battery drives each
// kernel over that grid and compares bit patterns, not values; the
// policy-level suite then re-runs every registry policy with the
// kernels forced scalar and asserts the whole trajectory (costs,
// hits, evictions) is bit-identical to the dispatched run.
#include <gtest/gtest.h>

#include <bit>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "kernels/kernels.h"
#include "registry/policy_registry.h"
#include "trace/generators.h"

namespace wmlp {
namespace {

using kernels::AccrueDelta;
using kernels::GainRate;

// Bitwise equality with readable failure output.
void ExpectBitEq(double a, double b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

// The exp-argument battery: denormals, signed zeros, values straddling
// the small-path threshold and the clamp bounds, and garden-variety
// solver arguments. (NaN is outside the kernel domain — the solver
// never produces one — and ±inf clamps.)
std::vector<double> ExpArgBattery() {
  return {
      0.0,        -0.0,        5e-324,    -5e-324,   1e-310,   -1e-310,
      1e-17,      -1e-17,      1e-9,      -1e-9,     0.1,      -0.1,
      0.3399999,  -0.3399999,  0.34,      -0.34,     0.3466,   -0.3466,
      0.5,        -0.5,        1.0,       -1.0,      2.75,     -2.75,
      8.0,        -8.0,        12.5,      -12.5,     100.0,    -100.0,
      690.0,      -690.0,      708.0,     -708.0,    709.0,    -709.0,
      750.0,      -750.0,      1e6,       -1e6,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity()};
}

TEST(KernelIsa, NameIsKnown) {
  const std::string isa = kernels::IsaName();
  EXPECT_TRUE(isa == "avx2" || isa == "sse2" || isa == "neon" ||
              isa == "scalar")
      << isa;
}

TEST(KernelLockstep, Expm1AllTailLengths) {
  const std::vector<double> battery = ExpArgBattery();
  // Every tail length 0..17, sliding over the battery so each length
  // sees different lane contents.
  for (size_t n = 0; n <= 17; ++n) {
    for (size_t off = 0; off + n <= battery.size(); ++off) {
      std::vector<double> in(battery.begin() + off,
                             battery.begin() + off + n);
      std::vector<double> simd_out(n, 42.0);
      std::vector<double> ref_out(n, 43.0);
      kernels::Expm1Batch(in.data(), simd_out.data(), n);
      kernels::Expm1BatchScalar(in.data(), ref_out.data(), n);
      for (size_t i = 0; i < n; ++i) {
        ExpectBitEq(simd_out[i], ref_out[i],
                    "expm1(" + std::to_string(in[i]) + ") n=" +
                        std::to_string(n));
      }
    }
  }
}

TEST(KernelLockstep, ExpAllTailLengths) {
  const std::vector<double> battery = ExpArgBattery();
  for (size_t n = 0; n <= 17; ++n) {
    for (size_t off = 0; off + n <= battery.size(); ++off) {
      std::vector<double> in(battery.begin() + off,
                             battery.begin() + off + n);
      std::vector<double> simd_out(n, 42.0);
      std::vector<double> ref_out(n, 43.0);
      kernels::ExpBatch(in.data(), simd_out.data(), n);
      kernels::ExpBatchScalar(in.data(), ref_out.data(), n);
      for (size_t i = 0; i < n; ++i) {
        ExpectBitEq(simd_out[i], ref_out[i],
                    "exp(" + std::to_string(in[i]) + ") n=" +
                        std::to_string(n));
      }
    }
  }
}

// The vector expm1/exp replace libm in the solver, whose trajectory is
// cross-checked against the reference implementation at 1e-9; the
// polynomial must sit far inside that. (Not a parity test — an accuracy
// floor against libm.)
TEST(KernelAccuracy, Expm1AndExpNearLibm) {
  for (const double x : ExpArgBattery()) {
    if (!std::isfinite(x)) continue;
    double got = 0.0;
    kernels::Expm1Batch(&x, &got, 1);
    const double want = std::expm1(x);
    const double tol = 1e-13 * (1.0 + std::abs(want));
    EXPECT_NEAR(got, want, tol) << "expm1(" << x << ")";
    kernels::ExpBatch(&x, &got, 1);
    const double ewant = std::exp(x);
    if (x >= -708.0 && std::isfinite(ewant)) {
      EXPECT_NEAR(got, ewant, 1e-13 * ewant) << "exp(" << x << ")";
    }
  }
  // Denormal arguments pass through expm1 exactly.
  double out = 0.0;
  const double den = 5e-324;
  kernels::Expm1Batch(&den, &out, 1);
  ExpectBitEq(out, den, "expm1(denormal)");
}

// Group-aggregate fixtures: weights spanning 1 to the near-degenerate
// 1e12 (where ds/w is denormal-tiny and expm1 cancellation matters),
// masses including zero and signed zero.
struct GroupFixture {
  std::vector<double> w;
  std::vector<double> mass;
  std::vector<double> lp;
  std::vector<double> e1;
};

GroupFixture MakeGroups(size_t m, uint64_t salt) {
  GroupFixture f;
  const double ws[] = {1.0, 2.0, 4.0, 16.0, 1024.0, 1e6, 1e12};
  for (size_t j = 0; j < m; ++j) {
    const uint64_t h = (j * 2654435761u + salt) % 7;
    f.w.push_back(ws[h]);
    f.mass.push_back(j % 5 == 3 ? 0.0
                     : j % 5 == 4 ? -0.0
                                  : 0.25 * static_cast<double>(j + 1));
    f.lp.push_back(f.mass.back() * f.w.back());
    f.e1.push_back(1.0 + 0.125 * static_cast<double>(j % 13));
  }
  return f;
}

TEST(KernelLockstep, GainRateAllTailLengths) {
  for (size_t m = 0; m <= 17; ++m) {
    for (const double ds : {0.0, 1e-9, 0.01, 0.5, 3.0, 7.5}) {
      const GroupFixture f = MakeGroups(m, m + 1);
      const GainRate a = kernels::GainRateBatch(f.w.data(), f.mass.data(),
                                                f.e1.data(), m, ds);
      const GainRate b = kernels::GainRateBatchScalar(
          f.w.data(), f.mass.data(), f.e1.data(), m, ds);
      ExpectBitEq(a.gain, b.gain, "gain m=" + std::to_string(m));
      ExpectBitEq(a.rate, b.rate, "rate m=" + std::to_string(m));
    }
  }
}

TEST(KernelLockstep, AccrueAdvanceAllTailLengths) {
  for (size_t m = 0; m <= 17; ++m) {
    for (const double ds : {0.0, 1e-9, 0.25, 2.0}) {
      const GroupFixture f = MakeGroups(m, 3 * m + 7);
      std::vector<double> e1_simd = f.e1;
      std::vector<double> e1_ref = f.e1;
      const AccrueDelta a = kernels::AccrueAdvanceBatch(
          f.w.data(), f.mass.data(), f.lp.data(), e1_simd.data(), m, ds);
      const AccrueDelta b = kernels::AccrueAdvanceBatchScalar(
          f.w.data(), f.mass.data(), f.lp.data(), e1_ref.data(), m, ds);
      ExpectBitEq(a.movement, b.movement, "movement m=" + std::to_string(m));
      ExpectBitEq(a.lp, b.lp, "lp m=" + std::to_string(m));
      for (size_t j = 0; j < m; ++j) {
        ExpectBitEq(e1_simd[j], e1_ref[j],
                    "e1[" + std::to_string(j) + "] m=" + std::to_string(m));
      }
    }
  }
}

// The inline dispatch sends m <= 4 down the VecLane1 small path, so the
// out-of-line SIMD bodies' padded-tail handling at tiny m is no longer
// reachable through *Batch. Exercise *BatchLarge directly to keep the
// full padded 4-lane block proven against the scalar reference.
TEST(KernelLockstep, LargeBodyCoversSmallM) {
  for (size_t m = 0; m <= 4; ++m) {
    for (const double ds : {0.0, 0.01, 2.5}) {
      const GroupFixture f = MakeGroups(m, 5 * m + 2);
      const GainRate a = kernels::GainRateBatchLarge(
          f.w.data(), f.mass.data(), f.e1.data(), m, ds);
      const GainRate b = kernels::GainRateBatchScalar(
          f.w.data(), f.mass.data(), f.e1.data(), m, ds);
      ExpectBitEq(a.gain, b.gain, "large gain m=" + std::to_string(m));
      ExpectBitEq(a.rate, b.rate, "large rate m=" + std::to_string(m));
      std::vector<double> e1_simd = f.e1;
      std::vector<double> e1_ref = f.e1;
      const AccrueDelta c = kernels::AccrueAdvanceBatchLarge(
          f.w.data(), f.mass.data(), f.lp.data(), e1_simd.data(), m, ds);
      const AccrueDelta d = kernels::AccrueAdvanceBatchScalar(
          f.w.data(), f.mass.data(), f.lp.data(), e1_ref.data(), m, ds);
      ExpectBitEq(c.movement, d.movement,
                  "large movement m=" + std::to_string(m));
      ExpectBitEq(c.lp, d.lp, "large lp m=" + std::to_string(m));
      for (size_t j = 0; j < m; ++j) {
        ExpectBitEq(e1_simd[j], e1_ref[j],
                    "large e1[" + std::to_string(j) + "]");
      }
      const double e = kernels::AbsentMassBatchLarge(
          f.mass.data(), f.e1.data(), f.lp.data(), m, 0.25);
      const double g = kernels::AbsentMassBatchScalar(
          f.mass.data(), f.e1.data(), f.lp.data(), m, 0.25);
      ExpectBitEq(e, g, "large absent mass m=" + std::to_string(m));
    }
  }
}

TEST(KernelLockstep, AbsentMassAllTailLengths) {
  for (size_t m = 0; m <= 17; ++m) {
    GroupFixture f = MakeGroups(m, 11 * m + 5);
    std::vector<double> cnt;
    for (size_t j = 0; j < m; ++j) {
      cnt.push_back(static_cast<double>(1 + j % 4));
    }
    const double a = kernels::AbsentMassBatch(f.mass.data(), f.e1.data(),
                                              cnt.data(), m, 0.25);
    const double b = kernels::AbsentMassBatchScalar(
        f.mass.data(), f.e1.data(), cnt.data(), m, 0.25);
    ExpectBitEq(a, b, "absent mass m=" + std::to_string(m));
  }
}

TEST(KernelLockstep, WaterfillCompactAllTailLengths) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t n = 0; n <= 17; ++n) {
    // Page table with keys including -0.0/+0.0 pairs and a NaN (never
    // matches its snapshot — dropped by both variants).
    std::vector<double> key = {0.0, -0.0, 1.5, 2.5, nan, 3.5, 4.5, 8.0};
    std::vector<uint8_t> live = {1, 1, 1, 0, 1, 1, 1, 1};
    std::vector<std::pair<double, int32_t>> entries;
    for (size_t i = 0; i < n; ++i) {
      const int32_t p = static_cast<int32_t>(i % key.size());
      // Every third entry is a stale snapshot (key mismatch).
      const double snap =
          i % 3 == 0 ? key[static_cast<size_t>(p)] + 1.0
                     : (p == 0 ? -0.0 : key[static_cast<size_t>(p)]);
      entries.push_back({snap, p});
    }
    std::vector<std::pair<double, int32_t>> a = entries;
    std::vector<std::pair<double, int32_t>> b = entries;
    const size_t na =
        kernels::WaterfillCompactBatch(a.data(), n, key.data(), live.data());
    const size_t nb = kernels::WaterfillCompactBatchScalar(
        b.data(), n, key.data(), live.data());
    ASSERT_EQ(na, nb) << "n=" << n;
    for (size_t i = 0; i < na; ++i) {
      ExpectBitEq(a[i].first, b[i].first, "entry key " + std::to_string(i));
      EXPECT_EQ(a[i].second, b[i].second) << "entry page " << i;
    }
    // +0.0 snapshot for a -0.0 key must survive (== compare, not bit
    // compare) — the predicate HeapPopMin applies.
    if (n >= 2) {
      bool kept_zero = false;
      for (size_t i = 0; i < na; ++i) kept_zero |= a[i].second == 1;
      EXPECT_TRUE(kept_zero) << "n=" << n;
    }
  }
}

TEST(KernelLockstep, ForceScalarReroutesDispatch) {
  const std::vector<double> in = ExpArgBattery();
  std::vector<double> dispatched(in.size());
  std::vector<double> forced(in.size());
  std::vector<double> ref(in.size());
  kernels::Expm1Batch(in.data(), dispatched.data(), in.size());
  kernels::ForceScalar(true);
  EXPECT_TRUE(kernels::ScalarForced());
  kernels::Expm1Batch(in.data(), forced.data(), in.size());
  kernels::ForceScalar(false);
  EXPECT_FALSE(kernels::ScalarForced());
  kernels::Expm1BatchScalar(in.data(), ref.data(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    ExpectBitEq(forced[i], ref[i], "forced dispatch");
    ExpectBitEq(dispatched[i], ref[i], "native vs scalar");
  }
}

// Whole-policy lockstep: every registry policy, served through the
// engine twice — kernels dispatched vs forced scalar — must produce a
// bit-identical SimResult. This is the "all lane configurations" claim
// at the trajectory level: any divergence in any kernel, any tail, any
// group shape the real solver produces would desync costs here.
class PolicyLockstep : public ::testing::TestWithParam<std::string> {
  void TearDown() override { kernels::ForceScalar(false); }
};

SimResult RunOnce(const std::string& name, const Trace& trace) {
  PolicyPtr policy = MakePolicyByName(name, 7);
  TraceSource source(trace);
  Engine engine(source, *policy);
  return engine.Run();
}

TEST_P(PolicyLockstep, TrajectoryBitIdenticalUnderForcedScalar) {
  const std::string name = GetParam();
  const int32_t ell = name == "marking" ? 1 : 3;
  Instance inst(64, 16, ell,
                MakeWeights(64, ell, WeightModel::kGeometricLevels, 4.0, 1));
  const Trace trace = GenZipf(inst, 1200, 0.8, LevelMix::UniformMix(ell), 5);

  kernels::ForceScalar(false);
  const SimResult dispatched = RunOnce(name, trace);
  kernels::ForceScalar(true);
  const SimResult forced = RunOnce(name, trace);
  kernels::ForceScalar(false);

  ExpectBitEq(dispatched.eviction_cost, forced.eviction_cost,
              name + " eviction_cost");
  ExpectBitEq(dispatched.fetch_cost, forced.fetch_cost,
              name + " fetch_cost");
  EXPECT_EQ(dispatched.hits, forced.hits) << name;
  EXPECT_EQ(dispatched.misses, forced.misses) << name;
  EXPECT_EQ(dispatched.evictions, forced.evictions) << name;
  EXPECT_EQ(dispatched.fetches, forced.fetches) << name;
}

INSTANTIATE_TEST_SUITE_P(AllRegistryPolicies, PolicyLockstep,
                         ::testing::ValuesIn(KnownPolicyNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace wmlp
