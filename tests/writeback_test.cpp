#include <gtest/gtest.h>

#include "baselines/landlord.h"
#include "baselines/lru.h"
#include "core/randomized.h"
#include "offline/multilevel_dp.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "writeback/rw_reduction.h"
#include "writeback/wb_trace_io.h"
#include "writeback/writeback_policies.h"
#include "writeback/writeback_simulator.h"

namespace wmlp {
namespace {

using wb::Op;
using wb::WbInstance;
using wb::WbRequest;
using wb::WbTrace;

WbInstance SmallWb(int32_t n = 4, int32_t k = 2, Cost w1 = 5.0,
                   Cost w2 = 1.0) {
  return WbInstance(n, k, std::vector<Cost>(static_cast<size_t>(n), w1),
                    std::vector<Cost>(static_cast<size_t>(n), w2));
}

TEST(WbInstance, ValidatesWeights) {
  EXPECT_DEATH(WbInstance(1, 1, {1.0}, {2.0}), "w1 >= w2");
  EXPECT_DEATH(WbInstance(1, 1, {2.0}, {0.5}), "w2 >= 1");
}

TEST(WbCacheState, DirtyLifecycle) {
  const WbInstance inst = SmallWb();
  wb::WbCacheState c(inst);
  c.Insert(0);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.dirty(0));
  c.MarkDirty(0);
  EXPECT_TRUE(c.dirty(0));
  EXPECT_TRUE(c.Remove(0));  // was dirty
  EXPECT_FALSE(c.contains(0));
}

TEST(WbSimulator, DirtyEvictionCostsMore) {
  const WbInstance inst = SmallWb(3, 1);
  WbTrace t{inst,
            {{0, Op::kWrite}, {1, Op::kRead}, {2, Op::kRead}}};
  wb::WbLru p;
  const auto res = wb::Simulate(t, p);
  // Evict dirty 0 (5) then clean 1 (1).
  EXPECT_EQ(res.evictions, 2);
  EXPECT_EQ(res.dirty_evictions, 1);
  EXPECT_NEAR(res.eviction_cost, 6.0, 1e-12);
  EXPECT_NEAR(res.writeback_cost, 4.0, 1e-12);
}

TEST(WbSimulator, WriteHitDirtiesForFree) {
  const WbInstance inst = SmallWb(2, 2);
  WbTrace t{inst, {{0, Op::kRead}, {0, Op::kWrite}}};
  wb::WbLru p;
  const auto res = wb::Simulate(t, p);
  EXPECT_EQ(res.hits, 1);
  EXPECT_NEAR(res.eviction_cost, 0.0, 1e-12);
}

TEST(Reduction, RoundTripInstances) {
  const WbInstance inst = SmallWb(5, 3, 7.0, 2.0);
  const Instance rw = wb::ToRwInstance(inst);
  EXPECT_EQ(rw.num_levels(), 2);
  EXPECT_EQ(rw.num_pages(), 5);
  EXPECT_EQ(rw.weight(0, 1), 7.0);
  EXPECT_EQ(rw.weight(0, 2), 2.0);
  const WbInstance back = wb::ToWbInstance(rw);
  EXPECT_EQ(back, inst);
}

TEST(Reduction, RoundTripTraces) {
  WbTrace t{SmallWb(), {{0, Op::kWrite}, {1, Op::kRead}, {0, Op::kRead}}};
  const Trace rw = wb::ToRwTrace(t);
  ASSERT_EQ(rw.requests.size(), 3u);
  EXPECT_EQ(rw.requests[0], (Request{0, 1}));
  EXPECT_EQ(rw.requests[1], (Request{1, 2}));
  EXPECT_EQ(rw.requests[2], (Request{0, 2}));
  const WbTrace back = wb::ToWbTrace(rw);
  EXPECT_EQ(back.requests, t.requests);
}

TEST(Reduction, AdapterCostNeverExceedsRwCost) {
  // Lemma 2.1 direction: the induced writeback policy pays at most what the
  // RW policy pays on the reduced instance.
  Rng seeds(31337);
  for (int trial = 0; trial < 6; ++trial) {
    wb::WbWorkloadOptions opts;
    opts.num_pages = 16;
    opts.cache_size = 4;
    opts.length = 600;
    opts.write_ratio = 0.35;
    opts.dirty_cost = 8.0;
    opts.clean_cost = 1.0;
    opts.seed = seeds.Next();
    const WbTrace t = wb::GenWbZipf(opts);
    const Trace rw = wb::ToRwTrace(t);

    // RW policy cost on the reduced trace.
    LandlordPolicy rw_policy;
    const SimResult rw_res = Simulate(rw, rw_policy);

    // Same policy driven through the adapter on the writeback side.
    wb::WbFromRwPolicy adapter(std::make_unique<LandlordPolicy>());
    const auto wb_res = wb::Simulate(t, adapter);
    EXPECT_LE(wb_res.eviction_cost, rw_res.eviction_cost + 1e-9)
        << "trial " << trial;
  }
}

TEST(Reduction, AdapterWithRandomizedPolicy) {
  wb::WbWorkloadOptions opts;
  opts.num_pages = 12;
  opts.cache_size = 4;
  opts.length = 300;
  opts.write_ratio = 0.5;
  opts.dirty_cost = 16.0;
  opts.clean_cost = 1.0;
  opts.seed = 5;
  const WbTrace t = wb::GenWbZipf(opts);
  const Trace rw = wb::ToRwTrace(t);

  PolicyPtr rw_policy = MakeRandomizedPolicy(77);
  const SimResult rw_res = Simulate(rw, *rw_policy);

  wb::WbFromRwPolicy adapter(MakeRandomizedPolicy(77));
  const auto wb_res = wb::Simulate(t, adapter);
  EXPECT_LE(wb_res.eviction_cost, rw_res.eviction_cost + 1e-9);
}

TEST(Reduction, OptimaEqualOnLoop) {
  const WbTrace t = wb::GenWbLoop(4, 2, 20, 3, 4.0, 1.0);
  EXPECT_NEAR(WritebackOptimal(t), MultiLevelOptimal(wb::ToRwTrace(t)),
              1e-9);
}

// ---- Native writeback baselines -------------------------------------------

class WbPolicySuite : public ::testing::TestWithParam<int> {};

wb::WbPolicyPtr MakeWbPolicy(int which) {
  switch (which) {
    case 0: return std::make_unique<wb::WbLru>();
    case 1: return std::make_unique<wb::WbCleanFirstLru>();
    case 2: return std::make_unique<wb::WbLandlord>();
    default: return nullptr;
  }
}

const char* WbPolicyName(int which) {
  static const char* names[] = {"lru", "cleanfirst", "landlord"};
  return names[which];
}

TEST_P(WbPolicySuite, FeasibleOnMixedWorkload) {
  wb::WbWorkloadOptions opts;
  opts.num_pages = 24;
  opts.cache_size = 6;
  opts.length = 2000;
  opts.write_ratio = 0.4;
  opts.seed = 11;
  const WbTrace t = wb::GenWbZipf(opts);
  auto p = MakeWbPolicy(GetParam());
  const auto res = wb::Simulate(t, *p);
  EXPECT_GT(res.hits, 0);
  EXPECT_GT(res.misses, 0);
}

TEST_P(WbPolicySuite, AllWritesMakesEveryEvictionDirty) {
  wb::WbWorkloadOptions opts;
  opts.num_pages = 10;
  opts.cache_size = 3;
  opts.length = 500;
  opts.write_ratio = 1.0;
  opts.seed = 13;
  const WbTrace t = wb::GenWbZipf(opts);
  auto p = MakeWbPolicy(GetParam());
  const auto res = wb::Simulate(t, *p);
  EXPECT_EQ(res.evictions, res.dirty_evictions);
}

INSTANTIATE_TEST_SUITE_P(AllWbPolicies, WbPolicySuite,
                         ::testing::Range(0, 3),
                         [](const auto& suite_info) {
                           return WbPolicyName(suite_info.param);
                         });

TEST(WbCleanFirstLru, AvoidsDirtyEvictionsWhenPossible) {
  const WbInstance inst = SmallWb(4, 2, 100.0, 1.0);
  // Dirty 0, clean 1 in cache; fetching 2 must evict clean 1.
  WbTrace t{inst, {{0, Op::kWrite}, {1, Op::kRead}, {2, Op::kRead}}};
  wb::WbCleanFirstLru p;
  const auto res = wb::Simulate(t, p);
  EXPECT_EQ(res.dirty_evictions, 0);
  EXPECT_NEAR(res.eviction_cost, 1.0, 1e-12);
}

TEST(WbLru, ObliviousToDirtyBits) {
  const WbInstance inst = SmallWb(4, 2, 100.0, 1.0);
  WbTrace t{inst, {{0, Op::kWrite}, {1, Op::kRead}, {2, Op::kRead}}};
  wb::WbLru p;
  const auto res = wb::Simulate(t, p);
  // LRU evicts page 0 (oldest) despite the writeback premium.
  EXPECT_EQ(res.dirty_evictions, 1);
  EXPECT_NEAR(res.eviction_cost, 100.0, 1e-12);
}

TEST(WbTraceIo, RoundTrip) {
  wb::WbWorkloadOptions opts;
  opts.num_pages = 6;
  opts.cache_size = 3;
  opts.length = 40;
  opts.write_ratio = 0.5;
  opts.page_dependent = true;
  opts.dirty_cost = 9.0;
  opts.seed = 77;
  const WbTrace t = wb::GenWbZipf(opts);
  std::string err;
  const auto back = wb::WbTraceFromString(wb::WbTraceToString(t), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->instance, t.instance);
  EXPECT_EQ(back->requests, t.requests);
}

TEST(WbTraceIo, RejectsBadInput) {
  std::string err;
  EXPECT_FALSE(wb::WbTraceFromString("nope\n", &err).has_value());
  EXPECT_NE(err.find("magic"), std::string::npos);
  // w1 < w2.
  EXPECT_FALSE(
      wb::WbTraceFromString("wmlp-wbtrace v1\n1 1\n1 2\n0\n", &err)
          .has_value());
  // Bad op char.
  EXPECT_FALSE(
      wb::WbTraceFromString("wmlp-wbtrace v1\n1 1\n2 1\n1\n0 X\n", &err)
          .has_value());
  // Out-of-range page.
  EXPECT_FALSE(
      wb::WbTraceFromString("wmlp-wbtrace v1\n1 1\n2 1\n1\n4 R\n", &err)
          .has_value());
}

TEST(GenWb, PageDependentWeightsRespectOrdering) {
  wb::WbWorkloadOptions opts;
  opts.num_pages = 40;
  opts.page_dependent = true;
  opts.dirty_cost = 50.0;
  opts.clean_cost = 1.0;
  opts.length = 1;
  opts.seed = 3;
  const WbTrace t = wb::GenWbZipf(opts);
  for (PageId p = 0; p < 40; ++p) {
    EXPECT_GE(t.instance.dirty_weight(p), t.instance.clean_weight(p));
    EXPECT_GE(t.instance.clean_weight(p), 1.0);
  }
}

}  // namespace
}  // namespace wmlp
