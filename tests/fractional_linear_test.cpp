#include <gtest/gtest.h>

#include "core/fractional_linear.h"
#include "core/randomized.h"
#include "lp/paging_lp.h"
#include "offline/weighted_opt.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

FracSchedule RunRecorded(FractionalPolicy& frac, const Trace& trace) {
  frac.Attach(trace.instance);
  FracSchedule sched;
  const size_t width = static_cast<size_t>(trace.instance.num_pages()) *
                       static_cast<size_t>(trace.instance.num_levels());
  sched.u.emplace_back(width, 1.0);
  for (Time t = 0; t < trace.length(); ++t) {
    frac.Serve(t, trace.requests[static_cast<size_t>(t)]);
    std::vector<double> snap;
    snap.reserve(width);
    for (PageId p = 0; p < trace.instance.num_pages(); ++p) {
      for (Level i = 1; i <= trace.instance.num_levels(); ++i) {
        snap.push_back(frac.U(p, i));
      }
    }
    sched.u.push_back(std::move(snap));
  }
  return sched;
}

TEST(FractionalLinear, LpFeasibleSingleLevel) {
  Instance inst(8, 3, 1, MakeWeights(8, 1, WeightModel::kLogUniform, 8.0, 1));
  const Trace t = GenZipf(inst, 150, 0.7, LevelMix::AllLowest(1), 2);
  FractionalLinear frac;
  const FracSchedule sched = RunRecorded(frac, t);
  std::string err;
  EXPECT_TRUE(CheckFracScheduleFeasible(t, sched, 1e-6, &err)) << err;
}

TEST(FractionalLinear, LpFeasibleMultiLevel) {
  Instance inst(6, 2, 3,
                MakeWeights(6, 3, WeightModel::kGeometricLevels, 16.0, 3));
  const Trace t = GenZipf(inst, 150, 0.7, LevelMix::UniformMix(3), 4);
  FractionalLinear frac;
  const FracSchedule sched = RunRecorded(frac, t);
  std::string err;
  EXPECT_TRUE(CheckFracScheduleFeasible(t, sched, 1e-6, &err)) << err;
}

TEST(FractionalLinear, CostMatchesSchedule) {
  Instance inst(6, 2, 2,
                MakeWeights(6, 2, WeightModel::kGeometricLevels, 4.0, 5));
  const Trace t = GenZipf(inst, 100, 0.6, LevelMix::UniformMix(2), 6);
  FractionalLinear frac;
  const FracSchedule sched = RunRecorded(frac, t);
  EXPECT_NEAR(frac.lp_cost(), FracScheduleEvictionCost(t, sched), 1e-6);
}

TEST(FractionalLinear, UniformWeightsSpreadEvenly) {
  // With uniform weights the linear waterfill raises every present page at
  // the same rate: after serving a fresh page with a full fractional
  // cache, every other page's u rises by the same amount.
  Instance inst = Instance::Uniform(5, 3);
  Trace warm{inst, {{0, 1}, {1, 1}, {2, 1}}};
  FractionalLinear frac;
  frac.Attach(inst);
  for (Time t = 0; t < warm.length(); ++t) {
    frac.Serve(t, warm.requests[static_cast<size_t>(t)]);
  }
  // Cache fractionally full (u0=u1=u2=0, others 1). Request page 3.
  frac.Serve(3, Request{3, 1});
  const double u0 = frac.U(0, 1);
  EXPECT_NEAR(frac.U(1, 1), u0, 1e-9);
  EXPECT_NEAR(frac.U(2, 1), u0, 1e-9);
  EXPECT_NEAR(3.0 * u0, 1.0, 1e-9);  // one unit spread over three pages
}

TEST(FractionalLinear, CheaperPagesEvictFaster) {
  // k = 2: serving page 2 must evict one unit from {0 (w=8), 1 (w=1)} at
  // rates 1/8 and 1 respectively: u0 ~ 1/9, u1 ~ 8/9.
  Instance inst(3, 2, 1, {{8.0}, {1.0}, {1.0}});
  FractionalLinear frac;
  frac.Attach(inst);
  frac.Serve(0, Request{0, 1});
  frac.Serve(1, Request{1, 1});
  frac.Serve(2, Request{2, 1});
  EXPECT_NEAR(frac.U(0, 1), 1.0 / 9.0, 1e-9);
  EXPECT_NEAR(frac.U(1, 1), 8.0 / 9.0, 1e-9);
}

TEST(FractionalLinear, CompetitiveButWorseThanMlpOnAdversary) {
  // Theta(k) vs O(log k): on a long weighted adversarial trace the linear
  // engine should not beat the multiplicative one by much, and typically
  // loses as k grows. Loose check: both stay within k * OPT.
  const Trace t = GenWeightedAdversary(16, 6000, 64.0, 7);
  const Cost opt = WeightedCachingOpt(t);
  ASSERT_GT(opt, 0.0);
  FractionalLinear lin;
  lin.Attach(t.instance);
  RandomizedOptions mopts;
  FractionalPolicyPtr mlp = MakeFractionalStack(mopts);
  mlp->Attach(t.instance);
  for (Time i = 0; i < t.length(); ++i) {
    lin.Serve(i, t.requests[static_cast<size_t>(i)]);
    mlp->Serve(i, t.requests[static_cast<size_t>(i)]);
  }
  EXPECT_LE(lin.lp_cost(), 17.0 * opt);
  EXPECT_LE(mlp->lp_cost(), 17.0 * opt);
}

TEST(FractionalLinear, WorksThroughRandomizedStack) {
  Instance inst(24, 6, 2,
                MakeWeights(24, 2, WeightModel::kGeometricLevels, 8.0, 8));
  const Trace t = GenZipf(inst, 600, 0.8, LevelMix::UniformMix(2), 9);
  RandomizedOptions opts;
  opts.engine = FractionalEngine::kLinear;
  PolicyPtr p = MakeRandomizedPolicy(11, opts);
  const SimResult res = Simulate(t, *p);
  EXPECT_GT(res.misses, 0);
}

TEST(FractionalLinear, OnlyRequestedPageDecreases) {
  Instance inst = Instance::Uniform(8, 3);
  const Trace t = GenZipf(inst, 150, 0.7, LevelMix::AllLowest(1), 10);
  FractionalLinear frac;
  frac.Attach(inst);
  std::vector<double> prev(8, 1.0);
  for (Time i = 0; i < t.length(); ++i) {
    const Request& r = t.requests[static_cast<size_t>(i)];
    frac.Serve(i, r);
    for (PageId p = 0; p < 8; ++p) {
      if (p != r.page) {
        EXPECT_GE(frac.U(p, 1), prev[static_cast<size_t>(p)] - 1e-9);
      }
      prev[static_cast<size_t>(p)] = frac.U(p, 1);
    }
  }
}

}  // namespace
}  // namespace wmlp
