// Fixture: MUST trigger [wall-clock]. Never compiled or linked — only
// linted.
#include <chrono>
#include <cstdint>

int64_t DeadlineFromRealTime() {
  const auto now = std::chrono::steady_clock::now();  // LINT: wall-clock
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}
