// Fixture: MUST produce zero findings, even when linted --as-dir
// src/core. Exercises the near-miss shapes the rules must NOT flag:
// gated telemetry, suppressed wall-clock, integral ==, ordered-map
// iteration, rule tokens inside comments and strings.
#include <chrono>
#include <cstdint>
#include <map>

#define WMLP_HOT
#define WMLP_CHECK(cond)
#define WMLP_TELEMETRY_COUNTER(var, name)

namespace telemetry {
inline constexpr bool kEnabled = false;
}

// Commented rule bait must stay invisible: std::rand(), steady_clock,
// mass == 1.0, WMLP_CHECK_MSG.
int64_t SumOrdered(const std::map<int64_t, int64_t>& weights) {
  int64_t total = 0;
  for (const auto& [page, weight] : weights) {  // ordered: deterministic
    total += page + weight;
  }
  if constexpr (telemetry::kEnabled) {
    WMLP_TELEMETRY_COUNTER(sums, "wmlp_fixture_sums_total");
  }
  const char* label = "srand( in a string literal is fine";
  (void)label;
  return total;
}

WMLP_HOT int64_t HotButClean(int64_t n) {
  WMLP_CHECK(n >= 0);
  return n == 0 ? 1 : n;  // integral compare: not float-eq
}

int64_t SanctionedClockRead() {
  // Throughput accounting, sanctioned exception:
  const auto now = std::chrono::steady_clock::now();  // wmlp-lint-allow(wall-clock)
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}
