// Fixture: MUST trigger [unordered-iter] when linted --as-dir src/core.
// Never compiled or linked — only linted.
#include <cstdint>
#include <unordered_map>

int64_t SumValues(const std::unordered_map<int64_t, int64_t>& weights) {
  int64_t total = 0;
  for (const auto& [page, weight] : weights) {  // LINT: unordered-iter
    total += page + weight;
  }
  return total;
}
