// Fixture: MUST trigger [float-eq]. Never compiled or linked — only
// linted.
bool FullyResident(double mass) {
  return mass == 1.0;  // LINT: float-eq
}
