// Fixture: MUST trigger [telemetry-gate] when linted --as-dir src/engine.
// Never compiled or linked — only linted: the call below is exactly the
// un-gated shape the rule exists to reject.
void RecordServe();

void Serve() {
  telemetry::Registry::Get();  // LINT: telemetry-gate (no kEnabled gate)
  RecordServe();
}
