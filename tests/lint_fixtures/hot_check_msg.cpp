// Fixture: MUST trigger [hot-check-msg]. Never compiled or linked — only
// linted: WMLP_CHECK_MSG builds its message inline, so it may not appear
// inside a WMLP_HOT (allocation-free) function body.
#include <cstdint>

#define WMLP_HOT
#define WMLP_CHECK_MSG(cond, msg)

WMLP_HOT int64_t ServeBatch(int64_t n) {
  WMLP_CHECK_MSG(n >= 0, "negative batch " << n);  // LINT: hot-check-msg
  return n;
}
