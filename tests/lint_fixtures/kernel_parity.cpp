// kernel-parity fixture: a *Batch entry point in a (pretend) src/kernels/
// TU with no *BatchScalar twin anywhere in the TU. The rule must flag the
// entry point's first occurrence; the second kernel below has its twin
// and must stay silent.
#include <cstddef>

namespace wmlp::kernels {

void OrphanBatch(const double* x, double* out, size_t n) {  // LINT: kernel-parity
  for (size_t i = 0; i < n; ++i) out[i] = x[i];
}

void PairedBatchScalar(const double* x, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] + 1.0;
}

void PairedBatch(const double* x, double* out, size_t n) {
  PairedBatchScalar(x, out, n);
}

}  // namespace wmlp::kernels
