// Fixture: MUST trigger [determinism-rng] (tests/lint_test.cpp asserts
// the exact rule id and line). Never compiled or linked — only linted.
#include <cstdlib>
#include <random>

int UnseededDraw() {
  std::random_device rd;  // LINT: determinism-rng
  return static_cast<int>(rd()) + std::rand();
}
