// Randomized equivalence suite: the output-sensitive FractionalMlp must
// reproduce the FractionalMlpReference trajectory — full u state and both
// cost meters — to 1e-9 after every step, across instance shapes, weight
// models, trace generators, and the E8 eta-ablation values. Plus unit
// tests for the shared stopping-clock root finder and a regression test on
// near-degenerate weight spreads.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/fractional.h"
#include "core/fractional_reference.h"
#include "core/stopping_clock.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

constexpr double kTol = 1e-9;

// Runs both solvers in lockstep and asserts full-state agreement after
// every step, so a divergence reports the first step it appears at.
//
// cost_abs_tol adds an absolute slack to the cost-meter comparison. It is
// 0 for well-conditioned instances; with near-degenerate weights (ratios
// ~1e12) any decision difference at the solvers' shared kEps = 1e-12
// tolerance moves O(w_max * kEps) ~ 1 of cost even though the u states
// agree to ~1e-12, so cost agreement below w_max * kEps per decision is
// not attainable and the test budgets for it explicitly.
void ExpectLockstepEquivalent(const Trace& trace,
                              const FractionalOptions& opts,
                              const std::string& label,
                              double cost_abs_tol = 0.0) {
  FractionalMlp fast(opts);
  FractionalMlpReference ref(opts);
  fast.Attach(trace.instance);
  ref.Attach(trace.instance);
  const int32_t n = trace.instance.num_pages();
  const int32_t ell = trace.instance.num_levels();
  ASSERT_DOUBLE_EQ(fast.eta(), ref.eta());
  for (Time t = 0; t < trace.length(); ++t) {
    const Request& r = trace.requests[static_cast<size_t>(t)];
    fast.Serve(t, r);
    ref.Serve(t, r);
    ASSERT_NEAR(fast.lp_cost(), ref.lp_cost(),
                cost_abs_tol + kTol * (1.0 + std::abs(ref.lp_cost())))
        << label << " lp_cost at t=" << t;
    ASSERT_NEAR(fast.movement_cost(), ref.movement_cost(),
                cost_abs_tol + kTol * (1.0 + std::abs(ref.movement_cost())))
        << label << " movement_cost at t=" << t;
    for (PageId p = 0; p < n; ++p) {
      for (Level i = 1; i <= ell; ++i) {
        ASSERT_NEAR(fast.U(p, i), ref.U(p, i), kTol)
            << label << " u(" << p << "," << i << ") at t=" << t
            << " (request p=" << r.page << " i=" << r.level << ")";
      }
    }
  }
}

Trace MakeRandomTrace(uint64_t seed) {
  Rng rng(seed);
  const int32_t n = 4 + static_cast<int32_t>(rng.NextBounded(29));
  const int32_t k = 1 + static_cast<int32_t>(
                            rng.NextBounded(static_cast<uint64_t>(n - 1)));
  const int32_t ell = 1 + static_cast<int32_t>(rng.NextBounded(4));
  const WeightModel models[] = {WeightModel::kUniform,
                                WeightModel::kGeometricLevels,
                                WeightModel::kZipfPages,
                                WeightModel::kLogUniform};
  const WeightModel wm = models[rng.NextBounded(4)];
  const double spread = 2.0 + 14.0 * rng.NextDouble();
  Instance inst(n, k, ell, MakeWeights(n, ell, wm, spread, seed + 1));
  const LevelMix mixes[] = {LevelMix::AllLowest(ell),
                            LevelMix::UniformMix(ell),
                            LevelMix::Geometric(ell, 0.5)};
  const LevelMix mix = mixes[rng.NextBounded(3)];
  const Time len = 100 + static_cast<Time>(rng.NextBounded(80));
  switch (rng.NextBounded(3)) {
    case 0:
      return GenZipf(inst, len, 0.4 + rng.NextDouble(), mix, seed + 2);
    case 1:
      return GenLoop(inst, len,
                     k + 1 + static_cast<int32_t>(rng.NextBounded(
                                 static_cast<uint64_t>(n - k))),
                     mix);
    default:
      return GenPhases(inst, len, std::min(n, k + 2), 25,
                       0.4 + rng.NextDouble(), mix, seed + 2);
  }
}

TEST(FractionalFast, MatchesReferenceOnRandomInstances) {
  // >= 200 randomized instances spanning shapes, weight models, mixes.
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const Trace trace = MakeRandomTrace(seed * 7919 + 13);
    ExpectLockstepEquivalent(trace, {}, "seed=" + std::to_string(seed));
    if (HasFatalFailure()) return;  // first divergence is the report
  }
}

TEST(FractionalFast, MatchesReferenceAcrossEtaAblation) {
  // The E8 eta grid (bench_e8_eta_ablation) with k=16.
  constexpr int32_t n = 48;
  constexpr int32_t k = 16;
  constexpr int32_t ell = 2;
  const double dk = static_cast<double>(k);
  const double etas[] = {1e-6, 1.0 / (dk * dk), 1.0 / dk,
                         1.0 / std::sqrt(dk), 1.0};
  Instance inst(n, k, ell,
                MakeWeights(n, ell, WeightModel::kGeometricLevels, 8.0, 3));
  const Trace trace = GenZipf(inst, 250, 0.7, LevelMix::UniformMix(ell), 4);
  for (const double eta : etas) {
    FractionalOptions opts;
    opts.eta = eta;
    ExpectLockstepEquivalent(trace, opts, "eta=" + std::to_string(eta));
    if (HasFatalFailure()) return;
  }
}

TEST(FractionalFast, MatchesReferenceOnNearDegenerateWeights) {
  // Weight ratios of ~1e12 within and across pages: the stopping-clock
  // conditioning regression (Newton stalls; bisection fallback must keep
  // both solvers on the same trajectory).
  constexpr int32_t n = 8;
  constexpr int32_t k = 3;
  constexpr int32_t ell = 2;
  std::vector<std::vector<Cost>> w(static_cast<size_t>(n));
  for (int32_t p = 0; p < n; ++p) {
    const bool heavy = (p % 2) == 0;
    w[static_cast<size_t>(p)] = {heavy ? 1e12 : 1.0 + 1e-9 * p, 1.0};
  }
  Instance inst(n, k, ell, std::move(w));
  const Trace trace = GenZipf(inst, 200, 0.6, LevelMix::UniformMix(ell), 9);
  // u states must still agree to kTol; the cost meters get a w_max * kEps
  // per-step budget for knife-edge decisions (see ExpectLockstepEquivalent).
  const double cost_slack = 1e12 * 1e-12 * static_cast<double>(trace.length());
  ExpectLockstepEquivalent(trace, {}, "degenerate", cost_slack);
}

TEST(FractionalFast, ServeBatchMatchesServeBitwise) {
  // The batched front adds only prefetch hints: the trajectory — every
  // u(p, i) and both cost meters — must be bit-for-bit the per-request
  // loop's.
  constexpr int32_t n = 64;
  constexpr int32_t k = 16;
  constexpr int32_t ell = 3;
  Instance inst(n, k, ell,
                MakeWeights(n, ell, WeightModel::kGeometricLevels, 4.0, 11));
  const Trace trace = GenZipf(inst, 400, 0.8, LevelMix::UniformMix(ell), 12);

  FractionalMlp loop;
  loop.Attach(trace.instance);
  for (Time t = 0; t < trace.length(); ++t) {
    loop.Serve(t, trace.requests[static_cast<size_t>(t)]);
  }

  FractionalMlp batch;
  batch.Attach(trace.instance);
  batch.ServeBatch(0, std::span<const Request>(trace.requests));

  EXPECT_EQ(std::bit_cast<uint64_t>(loop.lp_cost()),
            std::bit_cast<uint64_t>(batch.lp_cost()));
  EXPECT_EQ(std::bit_cast<uint64_t>(loop.movement_cost()),
            std::bit_cast<uint64_t>(batch.movement_cost()));
  for (PageId p = 0; p < n; ++p) {
    for (Level i = 1; i <= ell; ++i) {
      ASSERT_EQ(std::bit_cast<uint64_t>(loop.U(p, i)),
                std::bit_cast<uint64_t>(batch.U(p, i)))
          << "u(" << p << ", " << i << ")";
    }
  }
}

TEST(FractionalFast, OutputSensitiveCountersAdvance) {
  Instance inst(32, 8, 2,
                MakeWeights(32, 2, WeightModel::kGeometricLevels, 4.0, 5));
  const Trace trace = GenZipf(inst, 300, 0.8, LevelMix::UniformMix(2), 6);
  FractionalMlp fast;
  fast.Attach(inst);
  for (Time t = 0; t < trace.length(); ++t) {
    fast.Serve(t, trace.requests[static_cast<size_t>(t)]);
  }
  EXPECT_GT(fast.segments_solved(), 0);
  EXPECT_GT(fast.events_processed(), 0);
  // Shared geometric level weights: one group per level, not per page.
  EXPECT_LE(fast.num_weight_groups(), 2);
}

// ---- SolveStoppingClock unit tests -------------------------------------

TEST(FractionalFast, UlpAdjacentWeightsFormDistinctGroups) {
  // Regression for the group index keying. Weight groups are keyed on the
  // exact bit pattern of the cursor weight (std::bit_cast<uint64_t>, see
  // util/bitkey_index.h). Any truncating key — a float cast, a
  // fixed-point scale, std::hash<double> collapsing denormals — would
  // merge doubles one ulp apart into one group and silently mix their
  // mass/lp aggregates. Build three clusters of three ulp-adjacent
  // weights each: nine distinct doubles, three distinct floats.
  constexpr int32_t n = 9;
  constexpr int32_t k = 3;
  std::vector<std::vector<Cost>> w(static_cast<size_t>(n));
  for (int32_t p = 0; p < n; ++p) {
    double base = 1.5 + static_cast<double>(p / 3);
    for (int32_t ulp = 0; ulp < p % 3; ++ulp) {
      base = std::nextafter(base, 8.0);
    }
    // Distinct doubles that collide under float truncation: the test is
    // vacuous if this ever stops holding.
    ASSERT_EQ(static_cast<double>(static_cast<float>(base)),
              1.5 + static_cast<double>(p / 3));
    w[static_cast<size_t>(p)] = {base};
  }
  Instance inst(n, k, 1, std::move(w));
  // All nine pages cycle through a size-3 cache, so most are being raised
  // at any time and every weight eventually heads a group.
  const Trace trace = GenLoop(inst, 250, n, LevelMix::AllLowest(1));

  ExpectLockstepEquivalent(trace, {}, "ulp-adjacent");

  FractionalMlp fast;
  fast.Attach(trace.instance);
  int32_t max_groups = 0;
  for (Time t = 0; t < trace.length(); ++t) {
    fast.Serve(t, trace.requests[static_cast<size_t>(t)]);
    max_groups = std::max(max_groups, fast.num_weight_groups());
  }
  // Under any 3-way truncation collapse at most 3 groups could exist.
  // Groups are never retired, so after a full loop every one of the nine
  // distinct weights has headed its own group.
  EXPECT_EQ(max_groups, n);
}

TEST(StoppingClock, NewtonSolvesExponentialGain) {
  // g(s) = e^s - 1, need = 1 => s = log 2.
  auto g = [](double s, double* rate) {
    const double e = std::exp(s);
    if (rate != nullptr) *rate = e;
    return e - 1.0;
  };
  const double s_hi = 2.0;
  double rate_hi = 0.0;
  const double g_hi = g(s_hi, &rate_hi);
  StoppingClockStats stats;
  const double s = SolveStoppingClock(g, 1.0, s_hi, g_hi, rate_hi, &stats);
  EXPECT_NEAR(s, std::log(2.0), 1e-12);
  EXPECT_FALSE(stats.used_bisection);
  EXPECT_GT(stats.newton_iterations, 0);
  // Never undershoots: the returned clock satisfies the need.
  EXPECT_GE(g(s, nullptr), 1.0 - 1e-12);
}

TEST(StoppingClock, BisectionFallbackWhenNewtonStalls) {
  // A gain function whose reported rate is far too large: Newton creeps
  // and cannot converge in 50 iterations; the solver must fall back to
  // bisection instead of silently accepting the last iterate.
  auto g = [](double s, double* rate) {
    if (rate != nullptr) *rate = 1000.0;
    return s;
  };
  StoppingClockStats stats;
  const double s = SolveStoppingClock(g, 0.5, 1.0, 1.0, 1000.0, &stats);
  EXPECT_NEAR(s, 0.5, 1e-9);
  EXPECT_TRUE(stats.used_bisection);
  EXPECT_GE(g(s, nullptr), 0.5 - 1e-12);
}

TEST(StoppingClock, RecoversFromNewtonUndershoot) {
  // A too-small reported rate makes the first Newton step overshoot past
  // the root (g < need); the bracket must recover on [s, s_hi] and still
  // return a clock that meets the need.
  auto g = [](double s, double* rate) {
    if (rate != nullptr) *rate = 0.6;
    return s;
  };
  StoppingClockStats stats;
  const double s = SolveStoppingClock(g, 0.5, 1.0, 1.0, 0.6, &stats);
  EXPECT_TRUE(stats.used_bisection);
  EXPECT_GE(s, 0.5 - 1e-12);
  EXPECT_NEAR(s, 0.5, 1e-9);
}

}  // namespace
}  // namespace wmlp
