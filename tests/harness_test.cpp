#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "baselines/lru.h"
#include "core/randomized.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "harness/thread_pool.h"
#include "trace/generators.h"

namespace wmlp {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  ParallelFor(pool, 50, [&hits](int64_t i) {
    ++hits[static_cast<size_t>(i)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(Experiment, TrialsAreDeterministicPerSeed) {
  Instance inst = Instance::Uniform(16, 4);
  const Trace t = GenZipf(inst, 400, 0.8, LevelMix::AllLowest(1), 1);
  ThreadPool pool(2);
  const PolicyFactory factory = [](uint64_t seed) {
    return MakeRandomizedPolicy(seed);
  };
  const auto a = RunTrials(pool, t, factory, 4, 99);
  const auto b = RunTrials(pool, t, factory, 4, 99);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].eviction_cost, b[i].eviction_cost) << "trial " << i;
  }
}

TEST(Experiment, DeterministicPoliciesIdenticalAcrossTrials) {
  Instance inst = Instance::Uniform(16, 4);
  const Trace t = GenZipf(inst, 300, 0.8, LevelMix::AllLowest(1), 2);
  ThreadPool pool(4);
  const PolicyFactory factory = [](uint64_t) {
    return std::make_unique<LruPolicy>();
  };
  const auto res = RunTrials(pool, t, factory, 6, 1);
  for (size_t i = 1; i < res.size(); ++i) {
    EXPECT_EQ(res[i].eviction_cost, res[0].eviction_cost);
  }
}

TEST(Experiment, SummarizeRatios) {
  std::vector<SimResult> results(3);
  results[0].eviction_cost = 10.0;
  results[1].eviction_cost = 20.0;
  results[2].eviction_cost = 30.0;
  const RatioSummary s = SummarizeRatios(results, 10.0);
  EXPECT_NEAR(s.cost.mean(), 20.0, 1e-12);
  EXPECT_NEAR(s.ratio.mean(), 2.0, 1e-12);
  EXPECT_EQ(s.ratio.count(), 3);
  // Zero reference: ratios skipped.
  const RatioSummary z = SummarizeRatios(results, 0.0);
  EXPECT_EQ(z.ratio.count(), 0);
}

TEST(Table, PrintAligned) {
  Table table({"alg", "cost"});
  table.AddRow({"lru", "12.5"});
  table.AddRow({"landlord", "3.25"});
  std::ostringstream oss;
  table.Print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("alg"), std::string::npos);
  EXPECT_NE(out.find("landlord"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table table({"name", "note"});
  table.AddRow({"a,b", "say \"hi\""});
  std::ostringstream oss;
  table.WriteCsv(oss);
  EXPECT_EQ(oss.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, RowWidthMismatchFatal) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(Table, Fmt) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
  EXPECT_EQ(FmtInt(42), "42");
}

}  // namespace
}  // namespace wmlp
