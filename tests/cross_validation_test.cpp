// Independent-method cross-validation of the numeric substrates:
//   - simplex vs brute-force vertex enumeration (Gaussian elimination),
//   - min-cost flow vs an LP formulation of the same flow problem.
// Agreement between structurally different solvers is the strongest
// correctness evidence available without a reference implementation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "flow/min_cost_flow.h"
#include "lp/lp_problem.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace wmlp {
namespace {

// ---- Brute-force LP via vertex enumeration ---------------------------------
//
// For an LP with n variables, all >= 0, rows a_i x >= b_i (plus upper
// bounds folded in as rows), every vertex of the feasible polyhedron is
// the solution of n linearly independent tight constraints (chosen among
// rows and the x_j >= 0 facets). Enumerate all n-subsets, solve, check
// feasibility, take the best objective. Exponential — tests keep n <= 4.

struct DenseRow {
  std::vector<double> a;
  double b;
};

// Solves A x = b by Gaussian elimination; returns false if singular.
bool SolveSquare(std::vector<std::vector<double>> a, std::vector<double> b,
                 std::vector<double>* x) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-9) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  x->resize(n);
  for (size_t i = 0; i < n; ++i) (*x)[i] = b[i] / a[i][i];
  return true;
}

// Minimizes c over the rows (all interpreted as a x >= b) with x >= 0.
// Returns +inf if infeasible vertex-wise (caller only uses this when the
// LP is known bounded & feasible).
double BruteForceLp(const std::vector<double>& c,
                    const std::vector<DenseRow>& rows) {
  const size_t n = c.size();
  // Candidate tight constraints: all rows plus the n nonnegativity facets.
  std::vector<DenseRow> facets = rows;
  for (size_t j = 0; j < n; ++j) {
    DenseRow r;
    r.a.assign(n, 0.0);
    r.a[j] = 1.0;
    r.b = 0.0;
    facets.push_back(r);
  }
  const size_t m = facets.size();
  double best = std::numeric_limits<double>::infinity();
  std::vector<size_t> pick(n);
  // Enumerate n-subsets of facets via recursion.
  std::function<void(size_t, size_t)> rec = [&](size_t start, size_t depth) {
    if (depth == n) {
      std::vector<std::vector<double>> a(n);
      std::vector<double> b(n);
      for (size_t i = 0; i < n; ++i) {
        a[i] = facets[pick[i]].a;
        b[i] = facets[pick[i]].b;
      }
      std::vector<double> x;
      if (!SolveSquare(a, b, &x)) return;
      // Feasibility.
      for (double v : x) {
        if (v < -1e-7) return;
      }
      for (const DenseRow& r : rows) {
        double lhs = 0.0;
        for (size_t j = 0; j < n; ++j) lhs += r.a[j] * x[j];
        if (lhs < r.b - 1e-7) return;
      }
      double obj = 0.0;
      for (size_t j = 0; j < n; ++j) obj += c[j] * x[j];
      best = std::min(best, obj);
      return;
    }
    for (size_t i = start; i + (n - depth - 1) < m; ++i) {
      pick[depth] = i;
      rec(i + 1, depth + 1);
    }
  };
  rec(0, 0);
  return best;
}

TEST(CrossValidation, SimplexMatchesVertexEnumeration) {
  Rng rng(2024);
  int solved = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 2 + rng.NextBounded(3);  // 2..4 variables
    const size_t m = 2 + rng.NextBounded(4);  // 2..5 rows
    std::vector<double> c(n);
    for (auto& v : c) v = 0.2 + rng.NextDouble() * 2.0;  // positive => bounded
    std::vector<DenseRow> rows(m);
    LpProblem lp;
    for (size_t j = 0; j < n; ++j) lp.AddVariable(c[j]);
    for (size_t i = 0; i < m; ++i) {
      rows[i].a.resize(n);
      LpConstraint con;
      con.sense = ConstraintSense::kGe;
      for (size_t j = 0; j < n; ++j) {
        rows[i].a[j] = rng.NextDouble() * 2.0 - 0.4;
        con.index.push_back(static_cast<int32_t>(j));
        con.coef.push_back(rows[i].a[j]);
      }
      rows[i].b = rng.NextDouble() * 2.0;
      con.rhs = rows[i].b;
      lp.AddConstraint(std::move(con));
    }
    const auto res = SolveLp(lp);
    const double brute = BruteForceLp(c, rows);
    if (res.status == SimplexStatus::kInfeasible) {
      EXPECT_TRUE(std::isinf(brute)) << "trial " << trial;
      continue;
    }
    ASSERT_EQ(res.status, SimplexStatus::kOptimal) << "trial " << trial;
    ASSERT_FALSE(std::isinf(brute)) << "trial " << trial;
    EXPECT_NEAR(res.objective, brute, 1e-6) << "trial " << trial;
    ++solved;
  }
  EXPECT_GE(solved, 20);  // most random instances should be feasible
}

// ---- Min-cost flow vs LP ----------------------------------------------------

TEST(CrossValidation, MinCostFlowMatchesLpFormulation) {
  Rng rng(4048);
  for (int trial = 0; trial < 25; ++trial) {
    const int32_t num_nodes = 4 + static_cast<int32_t>(rng.NextBounded(3));
    const int32_t num_arcs = 6 + static_cast<int32_t>(rng.NextBounded(6));
    struct ArcSpec {
      int32_t from, to;
      int64_t cap;
      double cost;
    };
    std::vector<ArcSpec> arcs;
    MinCostFlow mcf(num_nodes);
    for (int32_t i = 0; i < num_arcs; ++i) {
      ArcSpec a;
      a.from = static_cast<int32_t>(rng.NextBounded(
          static_cast<uint64_t>(num_nodes)));
      do {
        a.to = static_cast<int32_t>(rng.NextBounded(
            static_cast<uint64_t>(num_nodes)));
      } while (a.to == a.from);
      a.cap = 1 + static_cast<int64_t>(rng.NextBounded(4));
      a.cost = rng.NextDouble() * 5.0;  // nonnegative: no negative cycles
      mcf.AddArc(a.from, a.to, a.cap, a.cost);
      arcs.push_back(a);
    }
    const int32_t source = 0;
    const int32_t sink = num_nodes - 1;
    const int64_t want = 1 + static_cast<int64_t>(rng.NextBounded(3));
    const auto flow_res = mcf.Solve(source, sink, want);

    // LP: min sum c_e f_e  s.t.  flow conservation with value = shipped,
    // 0 <= f_e <= cap_e. Uses the flow value the solver achieved (the LP
    // checks optimality for that value, which is what SSP guarantees).
    LpProblem lp;
    for (const auto& a : arcs) lp.AddVariable(a.cost,
                                              static_cast<double>(a.cap));
    for (int32_t v = 0; v < num_nodes; ++v) {
      LpConstraint con;
      con.sense = ConstraintSense::kEq;
      double rhs = 0.0;
      if (v == source) rhs = static_cast<double>(flow_res.flow);
      if (v == sink) rhs = -static_cast<double>(flow_res.flow);
      con.rhs = rhs;
      for (size_t e = 0; e < arcs.size(); ++e) {
        if (arcs[e].from == v) {
          con.index.push_back(static_cast<int32_t>(e));
          con.coef.push_back(1.0);
        } else if (arcs[e].to == v) {
          con.index.push_back(static_cast<int32_t>(e));
          con.coef.push_back(-1.0);
        }
      }
      if (con.index.empty() && rhs == 0.0) continue;
      lp.AddConstraint(std::move(con));
    }
    const auto lp_res = SolveLp(lp);
    ASSERT_EQ(lp_res.status, SimplexStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(lp_res.objective, flow_res.cost, 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace wmlp
