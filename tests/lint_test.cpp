// wmlp_lint rule-engine tests (tools/lint/lint.h).
//
// A linter whose rules cannot fire is dead weight, so this mirrors
// audit_test.cpp's negative-test discipline: every fixture TU under
// tests/lint_fixtures exists to trigger exactly one rule, and the test
// asserts the exact rule id fires on the marked line. The clean fixture
// and the whole-tree scan pin the other direction: the shapes the rules
// must NOT flag (gated telemetry, suppressed lines, tokens inside
// comments/strings) stay silent, and the shipped tree itself stays
// finding-free — the same check CI's lint job runs.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace wmlp::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(WMLP_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The fixture's expected finding line carries a `LINT:` marker comment.
int MarkerLine(const std::string& content) {
  int line = 0;
  std::istringstream in(content);
  std::string text;
  while (std::getline(in, text)) {
    ++line;
    if (text.find("LINT:") != std::string::npos) return line;
  }
  ADD_FAILURE() << "fixture has no LINT: marker";
  return -1;
}

// Lints a fixture as if it lived at `as_path` (the CLI's --as-dir) and
// asserts every finding is `rule`, with one on the marked line.
void ExpectFixtureFires(const std::string& fixture,
                        const std::string& as_path,
                        const std::string& rule) {
  const std::string content = ReadFile(FixturePath(fixture));
  const std::vector<Finding> findings = LintSource(as_path, content);
  ASSERT_FALSE(findings.empty()) << fixture << " triggered nothing";
  bool on_marker = false;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, rule) << fixture << ":" << f.line;
    if (f.line == MarkerLine(content)) on_marker = true;
  }
  EXPECT_TRUE(on_marker) << fixture << ": no finding on the LINT: line";
}

TEST(LintRules, RuleIdsAreStable) {
  EXPECT_EQ(RuleIds(),
            (std::vector<std::string>{"determinism-rng", "unordered-iter",
                                      "wall-clock", "float-eq",
                                      "telemetry-gate", "hot-check-msg",
                                      "kernel-parity"}));
}

TEST(LintFixtures, DeterminismRngFires) {
  ExpectFixtureFires("determinism_rng.cpp", "src/util/sampling.cpp",
                     "determinism-rng");
}

TEST(LintFixtures, UnorderedIterFires) {
  ExpectFixtureFires("unordered_iter.cpp", "src/core/unordered_iter.cpp",
                     "unordered-iter");
}

TEST(LintFixtures, WallClockFires) {
  ExpectFixtureFires("wall_clock.cpp", "src/engine/wall_clock.cpp",
                     "wall-clock");
}

TEST(LintFixtures, FloatEqFires) {
  ExpectFixtureFires("float_eq.cpp", "src/core/float_eq.cpp", "float-eq");
}

TEST(LintFixtures, TelemetryGateFires) {
  ExpectFixtureFires("telemetry_gate.cpp", "src/engine/telemetry_gate.cpp",
                     "telemetry-gate");
}

TEST(LintFixtures, HotCheckMsgFires) {
  ExpectFixtureFires("hot_check_msg.cpp", "src/engine/hot_check_msg.cpp",
                     "hot-check-msg");
}

TEST(LintFixtures, KernelParityFires) {
  ExpectFixtureFires("kernel_parity.cpp", "src/kernels/kernel_parity.cpp",
                     "kernel-parity");
}

// The parity contract is scoped to src/kernels/ implementation TUs: the
// same source elsewhere (callers of the kernels, the API header) is
// legal, and a call to the scalar twin inside the TU satisfies the rule
// (the dispatch-wrapper shape).
TEST(LintRules, KernelParityScopedToKernelTus) {
  const std::string content = ReadFile(FixturePath("kernel_parity.cpp"));
  EXPECT_TRUE(LintSource("src/core/kernel_parity.cpp", content).empty());
  EXPECT_TRUE(LintSource("src/kernels/kernels.h", content).empty());
}

TEST(LintRules, KernelParitySatisfiedByTwin) {
  const std::string src =
      "void FooBatch(int n) { FooBatchScalar(n); }\n"
      "void FooBatchScalar(int n) {}\n";
  EXPECT_TRUE(LintSource("src/kernels/x.cpp", src).empty());
}

// The near-miss battery: gated telemetry, suppressed wall-clock, ordered
// iteration, integral ==, and rule tokens inside comments/strings must
// all stay silent — even under the strictest directory scoping.
TEST(LintFixtures, CleanFixtureIsClean) {
  const std::string content = ReadFile(FixturePath("clean.cpp"));
  const std::vector<Finding> findings =
      LintSource("src/core/clean.cpp", content);
  for (const Finding& f : findings) {
    ADD_FAILURE() << "unexpected: " << f.file << ":" << f.line << " ["
                  << f.rule << "] " << f.message;
  }
}

// The unordered-iter contract is directory-scoped: the same TU outside
// src/{core,server,engine,sim} is legal (tests sort afterwards, tools
// print whatever order).
TEST(LintRules, UnorderedIterOnlyInContractDirs) {
  const std::string content = ReadFile(FixturePath("unordered_iter.cpp"));
  EXPECT_FALSE(LintSource("src/core/x.cpp", content).empty());
  EXPECT_FALSE(LintSource("src/server/x.cpp", content).empty());
  EXPECT_FALSE(LintSource("src/engine/x.cpp", content).empty());
  EXPECT_FALSE(LintSource("src/sim/x.cpp", content).empty());
  EXPECT_TRUE(LintSource("src/trace/x.cpp", content).empty());
  EXPECT_TRUE(LintSource("tests/x.cpp", content).empty());
}

TEST(LintRules, WallClockExemptsTelemetryAndBench) {
  const std::string content = ReadFile(FixturePath("wall_clock.cpp"));
  EXPECT_FALSE(LintSource("src/server/x.cpp", content).empty());
  EXPECT_TRUE(LintSource("src/telemetry/x.cpp", content).empty());
  EXPECT_TRUE(LintSource("src/harness/bench_perf_suite.cpp", content)
                  .empty());
}

TEST(LintRules, SuppressionCoversOwnAndNextLineOnly) {
  const std::string src =
      "// wmlp-lint-allow(determinism-rng)\n"
      "int a = std::rand();\n"
      "int b = std::rand();\n";
  const std::vector<Finding> findings = LintSource("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "determinism-rng");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintRules, SuppressionIsRuleSpecific) {
  // An allow for one rule must not mute another on the same line.
  const std::string src =
      "int a = std::rand();  // wmlp-lint-allow(wall-clock)\n";
  const std::vector<Finding> findings = LintSource("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "determinism-rng");
}

TEST(LintRules, CommentsAndStringsAreInvisible) {
  const std::string src =
      "// std::rand() steady_clock x == 1.0\n"
      "/* random_device */\n"
      "const char* s = \"srand( 2.0 == x\";\n"
      "const char* r = R\"(std::rand())\";\n";
  EXPECT_TRUE(LintSource("src/core/x.cpp", src).empty());
}

TEST(LintRules, TelemetryGateClosesWithItsBrace) {
  // Inside the kEnabled block: fine. After it closes: flagged.
  const std::string src =
      "void F() {\n"
      "  if constexpr (telemetry::kEnabled) {\n"
      "    telemetry::Registry::Get();\n"
      "  }\n"
      "  telemetry::Registry::Get();\n"
      "}\n";
  const std::vector<Finding> findings =
      LintSource("src/engine/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "telemetry-gate");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(LintRules, BracelessGateDoesNotLeak) {
  const std::string src =
      "void F() {\n"
      "  if constexpr (telemetry::kEnabled) Arm();\n"
      "  telemetry::Registry::Get();\n"
      "}\n";
  const std::vector<Finding> findings =
      LintSource("src/engine/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintRules, TelemetryGateScopedToSrcOutsideTelemetry) {
  const std::string src = "void F() { telemetry::Registry::Get(); }\n";
  EXPECT_FALSE(LintSource("src/engine/x.cpp", src).empty());
  EXPECT_TRUE(LintSource("src/telemetry/x.cpp", src).empty());
  EXPECT_TRUE(LintSource("tools/x.cpp", src).empty());
}

TEST(LintRules, HotRegionEndsAtClosingBrace) {
  const std::string src =
      "WMLP_HOT void Hot() {\n"
      "  WMLP_CHECK(true);\n"
      "}\n"
      "void Cold() {\n"
      "  WMLP_CHECK_MSG(true, \"fine outside hot\");\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/engine/x.cpp", src).empty());
}

TEST(LintRules, HotDeclarationDoesNotArm) {
  // A WMLP_HOT prototype (no body) must not poison the next function.
  const std::string src =
      "WMLP_HOT void Hot();\n"
      "void Other() {\n"
      "  WMLP_CHECK_MSG(true, \"not a hot body\");\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/engine/x.cpp", src).empty());
}

TEST(LintRules, UnorderedIterTracksHeaderMembers) {
  // A member declared unordered in the paired header is caught when the
  // .cpp iterates it.
  const std::string header =
      "class C {\n"
      "  std::unordered_map<int, int> index_;\n"
      "};\n";
  const std::string src =
      "void C::Dump() {\n"
      "  for (const auto& kv : index_) Use(kv);\n"
      "}\n";
  const std::vector<Finding> findings =
      LintSource("src/core/c.cpp", src, header);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  // Without the header context the name is unknown — and silent.
  EXPECT_TRUE(LintSource("src/core/c.cpp", src).empty());
}

TEST(LintRules, FloatEqIgnoresIntegralAndInequalities) {
  const std::string src =
      "bool A(int n) { return n == 0; }\n"
      "bool B(double x) { return x < 1.0; }\n"
      "bool C(double x, double y) { return x == y; }\n";  // no literal
  EXPECT_TRUE(LintSource("src/core/x.cpp", src).empty());
}

TEST(LintCompileDb, ExtractsFileEntries) {
  const std::string db_path =
      testing::TempDir() + "/lint_test_compile_commands.json";
  {
    std::ofstream out(db_path);
    out << R"([{"directory": "/b", "command": "c++ -c a.cpp",)"
        << R"( "file": "/repo/src/a.cpp"},)"
        << R"({"directory": "/b", "command": "c++ -c b.cpp",)"
        << R"( "file": "/repo/src/b.cpp"},)"
        << R"({"directory": "/b", "command": "c++ -c a.cpp",)"
        << R"( "file": "/repo/src/a.cpp"}])";
  }
  EXPECT_EQ(ReadCompileDb(db_path),
            (std::vector<std::string>{"/repo/src/a.cpp", "/repo/src/b.cpp"}));
}

// The shipped tree must be finding-free: this is the in-process twin of
// the `wmlp_lint_tree` ctest and the CI lint job, so a rule regression
// (or a new violation in src/) fails the unit suite too.
TEST(LintTree, ShippedSourcesAreClean) {
  const std::string root = WMLP_SOURCE_DIR;
  const std::vector<std::string> files = CollectTree(root);
  ASSERT_GT(files.size(), 50u) << "tree walk found suspiciously few files";
  const std::vector<Finding> findings = LintFiles(root, files);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
}  // namespace wmlp::lint
