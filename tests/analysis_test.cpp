#include <gtest/gtest.h>

#include <set>

#include "baselines/lru.h"
#include "sim/simulator.h"
#include "trace/analysis.h"
#include "trace/generators.h"
#include "trace/trace.h"

namespace wmlp {
namespace {

TEST(StackDistance, LoopHasConstantDistance) {
  Instance inst = Instance::Uniform(10, 4);
  const Trace t = GenLoop(inst, 100, 5, LevelMix::AllLowest(1));
  const auto profile = ComputeStackDistances(t);
  EXPECT_EQ(profile.cold, 5);
  // Every reuse of the 5-page loop has stack distance exactly 4.
  EXPECT_EQ(profile.histogram[4], 95);
  for (int d = 0; d < 4; ++d) EXPECT_EQ(profile.histogram[d], 0);
}

TEST(StackDistance, ImmediateRepeatIsDistanceZero) {
  Instance inst = Instance::Uniform(4, 2);
  Trace t{inst, {{0, 1}, {0, 1}, {1, 1}, {0, 1}}};
  const auto profile = ComputeStackDistances(t);
  EXPECT_EQ(profile.cold, 2);
  EXPECT_EQ(profile.histogram[0], 1);  // the repeat of 0
  EXPECT_EQ(profile.histogram[1], 1);  // 0 after 1
}

TEST(StackDistance, HitsAtCacheSizePredictsLru) {
  // Mattson's inclusion property: an LRU cache of size c hits exactly the
  // requests with stack distance < c. Cross-check against the simulator.
  Instance inst = Instance::Uniform(32, 6);
  const Trace t = GenZipf(inst, 3000, 0.9, LevelMix::AllLowest(1), 7);
  const auto profile = ComputeStackDistances(t);
  LruPolicy lru;
  const SimResult res = Simulate(t, lru);
  EXPECT_EQ(profile.HitsAtCacheSize(6), res.hits);
}

TEST(StackDistance, DeepAndTotalAccounting) {
  Instance inst = Instance::Uniform(8, 2);
  const Trace t = GenZipf(inst, 500, 0.3, LevelMix::AllLowest(1), 9);
  const auto profile = ComputeStackDistances(t, /*max_distance=*/2);
  EXPECT_EQ(profile.total_requests(), 500);
  EXPECT_GT(profile.deep, 0);  // alpha=0.3 over 8 pages reuses deeply
}

TEST(WorkingSet, LoopAndPhases) {
  Instance inst = Instance::Uniform(50, 4);
  const Trace loop = GenLoop(inst, 500, 5, LevelMix::AllLowest(1));
  EXPECT_NEAR(AverageWorkingSet(loop, 100), 5.0, 1e-9);
  const Trace phases = GenPhases(inst, 1000, 8, 250, 0.3,
                                 LevelMix::AllLowest(1), 3);
  const double ws = AverageWorkingSet(phases, 250);
  EXPECT_LE(ws, 8.0 + 1e-9);
  EXPECT_GT(ws, 3.0);
}

TEST(MixTraces, RemapsAndPreservesOrder) {
  Instance a = Instance::Uniform(4, 2);
  Instance b = Instance::Uniform(3, 2);
  Trace ta{a, {{0, 1}, {1, 1}, {2, 1}}};
  Trace tb{b, {{0, 1}, {1, 1}}};
  const Trace mixed = MixTraces({ta, tb}, {1.0, 1.0}, 3, 5);
  EXPECT_EQ(mixed.instance.num_pages(), 7);
  EXPECT_EQ(mixed.requests.size(), 5u);
  EXPECT_TRUE(ValidateTrace(mixed));
  // Component A's pages are 0..3; component B's pages are 4..6; each
  // component's subsequence must preserve its original order.
  std::vector<PageId> from_a, from_b;
  for (const Request& r : mixed.requests) {
    if (r.page < 4) {
      from_a.push_back(r.page);
    } else {
      from_b.push_back(r.page - 4);
    }
  }
  EXPECT_EQ(from_a, (std::vector<PageId>{0, 1, 2}));
  EXPECT_EQ(from_b, (std::vector<PageId>{0, 1}));
}

TEST(MixTraces, WeightsBiasInterleaving) {
  Instance a = Instance::Uniform(2, 2);
  Instance b = Instance::Uniform(2, 2);
  Trace ta{a, std::vector<Request>(500, Request{0, 1})};
  Trace tb{b, std::vector<Request>(500, Request{0, 1})};
  const Trace mixed = MixTraces({ta, tb}, {9.0, 1.0}, 2, 11);
  // Early prefix should be dominated by component A.
  int64_t a_early = 0;
  for (size_t i = 0; i < 100; ++i) {
    if (mixed.requests[i].page < 2) ++a_early;
  }
  EXPECT_GT(a_early, 70);
}

TEST(MixTraces, RequiresMatchingLevels) {
  Instance a = Instance::Uniform(2, 1);
  Instance b(2, 1, 2, {{4.0, 1.0}, {4.0, 1.0}});
  Trace ta{a, {{0, 1}}};
  Trace tb{b, {{0, 2}}};
  EXPECT_DEATH(MixTraces({ta, tb}, {1.0, 1.0}, 2, 1),
               "share the level count");
}

TEST(MixTraces, MultiLevelWeightsPreserved) {
  Instance a(2, 1, 2, {{8.0, 2.0}, {6.0, 1.0}});
  Instance b(1, 1, 2, {{4.0, 1.0}});
  Trace ta{a, {{1, 2}}};
  Trace tb{b, {{0, 1}}};
  const Trace mixed = MixTraces({ta, tb}, {1.0, 1.0}, 2, 3);
  EXPECT_EQ(mixed.instance.weight(1, 1), 6.0);
  EXPECT_EQ(mixed.instance.weight(2, 1), 4.0);  // b's page remapped to 2
}

}  // namespace
}  // namespace wmlp
