#include <gtest/gtest.h>

#include "core/waterfill.h"
#include "offline/multilevel_dp.h"
#include "offline/weighted_opt.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wmlp {
namespace {

TEST(Waterfill, ServesAndStaysFeasible) {
  Instance inst(20, 5, 3,
                MakeWeights(20, 3, WeightModel::kGeometricLevels, 16.0, 1));
  const Trace t = GenZipf(inst, 2000, 0.8, LevelMix::UniformMix(3), 2);
  WaterfillPolicy p;
  const SimResult res = Simulate(t, p);
  EXPECT_GT(res.hits, 0);
  EXPECT_GT(res.misses, 0);
}

TEST(Waterfill, MostlyFaultsOnAdversarialLoop) {
  // With uniform weights the waterfill is FIFO-like (ties broken by page
  // id give it occasional lucky hits); on the k+1 loop it must still fault
  // on the large majority of requests while OPT faults once per lap.
  Instance inst = Instance::Uniform(5, 4);
  const Trace t = GenLoop(inst, 200, 5, LevelMix::AllLowest(1));
  WaterfillPolicy p;
  const SimResult res = Simulate(t, p);
  EXPECT_LT(res.hit_rate(), 0.3);
}

TEST(Waterfill, ForcedReplacementPath) {
  // (0,2) cached; request (0,1) must replace without waterfill eviction.
  Instance inst(4, 2, 2, {{8.0, 2.0}, {8.0, 2.0}, {8.0, 2.0}, {8.0, 2.0}});
  Trace t{inst, {{0, 2}, {0, 1}}};
  WaterfillPolicy p;
  const SimResult res = Simulate(t, p);
  EXPECT_EQ(res.evictions, 1);
  EXPECT_NEAR(res.eviction_cost, 2.0, 1e-12);
}

TEST(Waterfill, PrefersEvictingCheapCopies) {
  // Expensive page 0 (w=64) and cheap pages: the first waterfill eviction
  // drowns a cheap copy first.
  Instance inst(4, 2, 1, {{64.0}, {2.0}, {2.0}, {2.0}});
  Trace t{inst, {{0, 1}, {1, 1}, {2, 1}}};
  WaterfillPolicy p;
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, p, opts);
  std::vector<PageId> evicted;
  for (const auto& ev : log) {
    if (ev.kind == CacheEvent::Kind::kEvict) evicted.push_back(ev.page);
  }
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1);
}

TEST(Waterfill, EmpiricallyOKCompetitiveSingleLevel) {
  // Theorem 4.1 (2k with separation; 4k general): measured ratio against
  // exact OPT stays below 4k + slack on random weighted traces.
  Rng seeds(3);
  for (int trial = 0; trial < 6; ++trial) {
    const int32_t k = 3 + static_cast<int32_t>(seeds.Next() % 3);
    Instance inst(k * 3, k, 1,
                  MakeWeights(k * 3, 1, WeightModel::kLogUniform, 32.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 800, 0.6, LevelMix::AllLowest(1),
                            seeds.Next());
    const Cost opt = WeightedCachingOpt(t);
    if (opt < 1.0) continue;
    WaterfillPolicy p;
    const SimResult res = Simulate(t, p);
    EXPECT_LE(res.eviction_cost,
              4.0 * k * opt + 2.0 * inst.max_weight())
        << "trial " << trial << " k=" << k;
  }
}

TEST(Waterfill, EmpiricallyOKCompetitiveMultiLevel) {
  Rng seeds(4);
  for (int trial = 0; trial < 5; ++trial) {
    Instance inst(5, 2, 2,
                  MakeWeights(5, 2, WeightModel::kGeometricLevels, 4.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 120, 0.6, LevelMix::UniformMix(2),
                            seeds.Next());
    const Cost opt = MultiLevelOptimal(t);
    WaterfillPolicy p;
    const SimResult res = Simulate(t, p);
    EXPECT_LE(res.eviction_cost, 4.0 * 2 * opt + 3.0 * inst.max_weight())
        << "trial " << trial;
  }
}

TEST(Waterfill, DeterministicAcrossRuns) {
  Instance inst(16, 4, 2,
                MakeWeights(16, 2, WeightModel::kGeometricLevels, 8.0, 5));
  const Trace t = GenZipf(inst, 500, 0.8, LevelMix::UniformMix(2), 6);
  WaterfillPolicy a, b;
  EXPECT_EQ(Simulate(t, a).eviction_cost, Simulate(t, b).eviction_cost);
}

TEST(Waterfill, NoEvictionWithoutPressure) {
  Instance inst = Instance::Uniform(4, 4);
  const Trace t = GenZipf(inst, 100, 0.5, LevelMix::AllLowest(1), 7);
  WaterfillPolicy p;
  EXPECT_EQ(Simulate(t, p).evictions, 0);
}

}  // namespace
}  // namespace wmlp
