// The lazy DPs (multilevel_dp) vs assumption-free exhaustive DPs
// (exhaustive): agreement on random tiny instances validates the
// laziness-is-WLOG argument the fast optima rely on.
#include <gtest/gtest.h>

#include "offline/exhaustive.h"
#include "offline/multilevel_dp.h"
#include "offline/weighted_opt.h"
#include "trace/generators.h"
#include "util/rng.h"
#include "writeback/rw_reduction.h"

namespace wmlp {
namespace {

TEST(Exhaustive, MatchesLazyDpSingleLevel) {
  Rng seeds(101);
  for (int trial = 0; trial < 8; ++trial) {
    Instance inst(4, 2, 1,
                  MakeWeights(4, 1, WeightModel::kLogUniform, 8.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 18, 0.5, LevelMix::AllLowest(1),
                            seeds.Next());
    EXPECT_NEAR(MultiLevelOptimalExhaustive(t), MultiLevelOptimal(t), 1e-9)
        << "trial " << trial;
  }
}

TEST(Exhaustive, MatchesLazyDpTwoLevels) {
  Rng seeds(102);
  for (int trial = 0; trial < 8; ++trial) {
    Instance inst(4, 2, 2,
                  MakeWeights(4, 2, WeightModel::kGeometricLevels, 4.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 16, 0.5, LevelMix::UniformMix(2),
                            seeds.Next());
    EXPECT_NEAR(MultiLevelOptimalExhaustive(t), MultiLevelOptimal(t), 1e-9)
        << "trial " << trial;
  }
}

TEST(Exhaustive, MatchesLazyDpThreeLevels) {
  Rng seeds(103);
  for (int trial = 0; trial < 5; ++trial) {
    Instance inst(3, 2, 3,
                  MakeWeights(3, 3, WeightModel::kGeometricLevels, 8.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 14, 0.5, LevelMix::UniformMix(3),
                            seeds.Next());
    EXPECT_NEAR(MultiLevelOptimalExhaustive(t), MultiLevelOptimal(t), 1e-9)
        << "trial " << trial;
  }
}

TEST(Exhaustive, MatchesFlowOnWeightedPaging) {
  Rng seeds(104);
  for (int trial = 0; trial < 5; ++trial) {
    Instance inst(5, 3, 1,
                  MakeWeights(5, 1, WeightModel::kLogUniform, 8.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 20, 0.6, LevelMix::AllLowest(1),
                            seeds.Next());
    EXPECT_NEAR(MultiLevelOptimalExhaustive(t), WeightedCachingOpt(t), 1e-9)
        << "trial " << trial;
  }
}

TEST(Exhaustive, WritebackMatchesLazyDp) {
  Rng seeds(105);
  for (int trial = 0; trial < 8; ++trial) {
    wb::WbWorkloadOptions opts;
    opts.num_pages = 4;
    opts.cache_size = 2;
    opts.length = 16;
    opts.write_ratio = 0.4;
    opts.dirty_cost = 6.0;
    opts.clean_cost = 1.0;
    opts.page_dependent = trial % 2 == 0;
    opts.seed = seeds.Next();
    const wb::WbTrace t = wb::GenWbZipf(opts);
    EXPECT_NEAR(WritebackOptimalExhaustive(t), WritebackOptimal(t), 1e-9)
        << "trial " << trial;
  }
}

TEST(Exhaustive, WritebackEquivalenceTriangle) {
  // Three independent computations of the same optimum: native writeback
  // exhaustive, native writeback lazy, multi-level lazy on the reduction.
  wb::WbWorkloadOptions opts;
  opts.num_pages = 4;
  opts.cache_size = 2;
  opts.length = 20;
  opts.write_ratio = 0.5;
  opts.dirty_cost = 4.0;
  opts.clean_cost = 1.0;
  opts.seed = 99;
  const wb::WbTrace t = wb::GenWbZipf(opts);
  const Cost a = WritebackOptimalExhaustive(t);
  const Cost b = WritebackOptimal(t);
  const Cost c = MultiLevelOptimal(wb::ToRwTrace(t));
  EXPECT_NEAR(a, b, 1e-9);
  EXPECT_NEAR(b, c, 1e-9);
}

TEST(Exhaustive, RefusesHugeStateSpaces) {
  Instance inst = Instance::Uniform(30, 4);
  Trace t{inst, {{0, 1}}};
  EXPECT_DEATH(MultiLevelOptimalExhaustive(t), "too large");
}

TEST(Exhaustive, EmptyTraceIsFree) {
  Instance inst = Instance::Uniform(3, 2);
  Trace t{inst, {}};
  EXPECT_EQ(MultiLevelOptimalExhaustive(t), 0.0);
}

TEST(Exhaustive, DirtyCleaningViaRefetchConsidered) {
  // One page, k = 1: write then many reads then eviction pressure never
  // happens... craft: W0, R1, R0: evicting dirty 0 costs w1; the exhaustive
  // DP may also evict-and-refetch 0 clean before t1 (cost w1, then the
  // final eviction would be w2) — with only these three requests, OPT is
  // simply w1 (evict dirty 0 once for page 1).
  wb::WbInstance inst(2, 1, {5.0, 5.0}, {1.0, 1.0});
  wb::WbTrace t{inst,
                {{0, wb::Op::kWrite}, {1, wb::Op::kRead},
                 {0, wb::Op::kRead}}};
  EXPECT_NEAR(WritebackOptimalExhaustive(t), 5.0 + 1.0, 1e-9);
  EXPECT_NEAR(WritebackOptimal(t), 5.0 + 1.0, 1e-9);
}

}  // namespace
}  // namespace wmlp
