#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "trace/generators.h"
#include "trace/instance.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace wmlp {
namespace {

Instance SmallMlInstance(int32_t n = 6, int32_t k = 3, int32_t ell = 2) {
  return Instance(n, k, ell,
                  std::vector<std::vector<Cost>>(
                      static_cast<size_t>(n), std::vector<Cost>{4.0, 1.0}));
}

TEST(Instance, UniformFactory) {
  const Instance inst = Instance::Uniform(10, 4, 2.5);
  EXPECT_EQ(inst.num_pages(), 10);
  EXPECT_EQ(inst.cache_size(), 4);
  EXPECT_EQ(inst.num_levels(), 1);
  EXPECT_EQ(inst.weight(3, 1), 2.5);
}

TEST(Instance, WeightAccess) {
  const Instance inst = SmallMlInstance();
  EXPECT_EQ(inst.weight(0, 1), 4.0);
  EXPECT_EQ(inst.weight(0, 2), 1.0);
  EXPECT_EQ(inst.max_weight(), 4.0);
  EXPECT_EQ(inst.min_weight(), 1.0);
}

TEST(Instance, ValidityChecks) {
  const Instance inst = SmallMlInstance();
  EXPECT_TRUE(inst.valid_page(0));
  EXPECT_TRUE(inst.valid_page(5));
  EXPECT_FALSE(inst.valid_page(6));
  EXPECT_FALSE(inst.valid_page(-1));
  EXPECT_TRUE(inst.valid_level(1));
  EXPECT_TRUE(inst.valid_level(2));
  EXPECT_FALSE(inst.valid_level(0));
  EXPECT_FALSE(inst.valid_level(3));
}

TEST(Instance, TwoSeparationDetection) {
  EXPECT_TRUE(SmallMlInstance().levels_two_separated());
  Instance tight(2, 1, 2,
                 {{3.0, 2.0}, {3.0, 2.0}});
  EXPECT_FALSE(tight.levels_two_separated());
}

TEST(Instance, MergeLevelsProducesSeparatedInstance) {
  // Levels 8, 5, 4, 1: 8 vs 5 not separated -> 5 merges into 8's slot.
  Instance inst(2, 2, 4, {{8.0, 5.0, 4.0, 1.0}, {8.0, 5.0, 4.0, 1.0}});
  const auto merged = inst.MergeLevels();
  EXPECT_TRUE(merged.instance.levels_two_separated());
  // Every original level maps to a kept level that can serve it with
  // weight less than 2x the original.
  for (PageId p = 0; p < 2; ++p) {
    for (Level i = 1; i <= 4; ++i) {
      const Level m = merged.level_map[static_cast<size_t>(p)]
                                      [static_cast<size_t>(i - 1)];
      ASSERT_GE(m, 1);
      ASSERT_LE(m, merged.instance.num_levels());
      EXPECT_LT(merged.instance.weight(p, m), 2.0 * inst.weight(p, i));
      EXPECT_GE(merged.instance.weight(p, m), inst.weight(p, i));
    }
  }
}

TEST(Instance, MergeLevelsIdentityWhenSeparated) {
  const Instance inst = SmallMlInstance();
  const auto merged = inst.MergeLevels();
  EXPECT_EQ(merged.instance.num_levels(), 2);
  EXPECT_EQ(merged.level_map[0][0], 1);
  EXPECT_EQ(merged.level_map[0][1], 2);
}

TEST(Trace, ValidateCatchesBadRequests) {
  Trace t{SmallMlInstance(), {{0, 1}, {5, 2}}};
  std::string err;
  EXPECT_TRUE(ValidateTrace(t, &err)) << err;
  t.requests.push_back({6, 1});
  EXPECT_FALSE(ValidateTrace(t, &err));
  EXPECT_NE(err.find("request 2"), std::string::npos);
}

TEST(Trace, Stats) {
  Trace t{SmallMlInstance(), {{0, 1}, {0, 2}, {1, 2}, {2, 2}}};
  const TraceStats s = ComputeStats(t);
  EXPECT_EQ(s.length, 4);
  EXPECT_EQ(s.distinct_pages, 3);
  EXPECT_NEAR(s.level1_fraction, 0.25, 1e-12);
  EXPECT_NEAR(s.mean_level, 1.75, 1e-12);
  EXPECT_NEAR(s.total_request_weight, 4.0 + 1.0 + 1.0 + 1.0, 1e-12);
}

TEST(Generators, MakeWeightsMonotoneAndSeparated) {
  for (const WeightModel model :
       {WeightModel::kUniform, WeightModel::kGeometricLevels,
        WeightModel::kZipfPages, WeightModel::kLogUniform}) {
    const auto w = MakeWeights(12, 3, model, 16.0, 99);
    ASSERT_EQ(w.size(), 12u);
    for (const auto& row : w) {
      ASSERT_EQ(row.size(), 3u);
      EXPECT_GE(row[2], 1.0);
      for (size_t i = 1; i < row.size(); ++i) {
        EXPECT_GE(row[i - 1], 2.0 * row[i]);  // 2-separated levels
      }
    }
  }
}

TEST(Generators, LevelMixReadWrite) {
  const LevelMix m = LevelMix::ReadWrite(0.25);
  ASSERT_EQ(m.probs.size(), 2u);
  EXPECT_NEAR(m.probs[0], 0.25, 1e-12);
  EXPECT_NEAR(m.probs[1], 0.75, 1e-12);
}

TEST(Generators, LevelMixGeometricNormalized) {
  const LevelMix m = LevelMix::Geometric(4, 0.5);
  double sum = 0.0;
  for (double p : m.probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Bottom-heavy by default: level 4 most probable.
  EXPECT_GT(m.probs[3], m.probs[0]);
}

TEST(Generators, ZipfTraceValidAndSkewed) {
  Instance inst(32, 8, 1, MakeWeights(32, 1, WeightModel::kUniform, 1.0, 0));
  const Trace t = GenZipf(inst, 20000, 1.0, LevelMix::AllLowest(1), 5);
  EXPECT_TRUE(ValidateTrace(t));
  EXPECT_EQ(t.length(), 20000);
  // Page 0 strictly more frequent than page 31 under zipf(1).
  int64_t c0 = 0, c31 = 0;
  for (const Request& r : t.requests) {
    if (r.page == 0) ++c0;
    if (r.page == 31) ++c31;
  }
  EXPECT_GT(c0, 4 * c31);
}

TEST(Generators, ZipfTraceDeterministicInSeed) {
  Instance inst = Instance::Uniform(16, 4);
  const Trace a = GenZipf(inst, 500, 0.7, LevelMix::AllLowest(1), 42);
  const Trace b = GenZipf(inst, 500, 0.7, LevelMix::AllLowest(1), 42);
  EXPECT_EQ(a.requests, b.requests);
}

TEST(Generators, LoopTraceCycles) {
  Instance inst = Instance::Uniform(10, 4);
  const Trace t = GenLoop(inst, 25, 5, LevelMix::AllLowest(1));
  for (Time i = 0; i < t.length(); ++i) {
    EXPECT_EQ(t.requests[static_cast<size_t>(i)].page,
              static_cast<PageId>(i % 5));
  }
}

TEST(Generators, PhasesStayInWorkingSet) {
  Instance inst = Instance::Uniform(64, 8);
  const Trace t = GenPhases(inst, 1000, 10, 100, 0.5,
                            LevelMix::AllLowest(1), 7);
  EXPECT_TRUE(ValidateTrace(t));
  // Each phase touches at most 10 distinct pages.
  for (int64_t phase = 0; phase < 10; ++phase) {
    std::set<PageId> pages;
    for (int64_t i = phase * 100; i < (phase + 1) * 100; ++i) {
      pages.insert(t.requests[static_cast<size_t>(i)].page);
    }
    EXPECT_LE(pages.size(), 10u);
  }
}

TEST(Generators, ScanMixValid) {
  Instance inst = Instance::Uniform(50, 10);
  const Trace t =
      GenScanMix(inst, 2000, 0.8, 20, 0.05, LevelMix::AllLowest(1), 3);
  EXPECT_TRUE(ValidateTrace(t));
  EXPECT_EQ(t.length(), 2000);
}

TEST(Generators, MarkovValidAndLocal) {
  Instance inst = Instance::Uniform(100, 10);
  const Trace t =
      GenMarkov(inst, 5000, 0.8, 8, 0.6, LevelMix::AllLowest(1), 5);
  EXPECT_TRUE(ValidateTrace(t));
  // High stay probability => many immediate repeats within window.
  int64_t repeats = 0;
  for (size_t i = 1; i < t.requests.size(); ++i) {
    if (t.requests[i].page == t.requests[i - 1].page) ++repeats;
  }
  EXPECT_GT(repeats, 100);
}

TEST(Generators, WeightedAdversaryShape) {
  const Trace t = GenWeightedAdversary(8, 1000, 64.0, 9);
  EXPECT_TRUE(ValidateTrace(t));
  EXPECT_EQ(t.instance.num_pages(), 9);
  EXPECT_EQ(t.instance.cache_size(), 8);
  EXPECT_NEAR(t.instance.weight(8, 1), 64.0, 1e-9);
  EXPECT_NEAR(t.instance.weight(0, 1), 1.0, 1e-9);
}

TEST(Generators, MultiGranularityShape) {
  const Trace t = GenMultiGranularity(8, 4, 8, 3000, 0.2, 0.8, 13);
  EXPECT_TRUE(ValidateTrace(t));
  EXPECT_EQ(t.instance.num_pages(), 32);
  EXPECT_EQ(t.instance.num_levels(), 2);
  EXPECT_GE(t.instance.weight(0, 1), 2.0 * t.instance.weight(0, 2));
  const TraceStats s = ComputeStats(t);
  EXPECT_NEAR(s.level1_fraction, 0.2, 0.05);
}

TEST(Generators, WriteBurstsAreBursty) {
  Instance inst(32, 8, 2,
                MakeWeights(32, 2, WeightModel::kGeometricLevels, 8.0, 1));
  const Trace t = GenWriteBursts(inst, 20000, 0.8, 0.05, 0.9, 2);
  EXPECT_TRUE(ValidateTrace(t));
  // Stationary write fraction for the 2-state chain: s/(s + (1-p)) with
  // start s=0.05, stay p=0.9 -> 1/3.
  const TraceStats s = ComputeStats(t);
  EXPECT_NEAR(s.level1_fraction, 1.0 / 3.0, 0.05);
  // Burstiness: P(write | previous write) must be near `burst_stay`, far
  // above the marginal write rate.
  int64_t ww = 0, w_total = 0;
  for (size_t i = 1; i < t.requests.size(); ++i) {
    if (t.requests[i - 1].level == 1) {
      ++w_total;
      if (t.requests[i].level == 1) ++ww;
    }
  }
  EXPECT_NEAR(static_cast<double>(ww) / static_cast<double>(w_total), 0.9,
              0.03);
}

TEST(Generators, WriteBurstsRequireTwoLevels) {
  Instance inst = Instance::Uniform(4, 2);
  EXPECT_DEATH(GenWriteBursts(inst, 10, 0.5, 0.1, 0.9, 1), "ell = 2");
}

TEST(TraceIo, RoundTrip) {
  Instance inst(4, 2, 2, {{8.0, 2.0}, {4.0, 1.0}, {4.0, 2.0}, {2.0, 1.0}});
  Trace t{inst, {{0, 1}, {1, 2}, {3, 2}, {2, 1}}};
  const std::string text = TraceToString(t);
  std::string err;
  const auto back = TraceFromString(text, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->instance, t.instance);
  EXPECT_EQ(back->requests, t.requests);
}

TEST(TraceIo, RejectsBadMagic) {
  std::string err;
  EXPECT_FALSE(TraceFromString("garbage\n", &err).has_value());
  EXPECT_NE(err.find("magic"), std::string::npos);
}

TEST(TraceIo, RejectsNonMonotoneWeights) {
  const std::string text =
      "wmlp-trace v1\n2 1 2\n1 2\n2 1\n0\n";
  std::string err;
  EXPECT_FALSE(TraceFromString(text, &err).has_value());
}

TEST(TraceIo, RejectsOutOfRangeRequest) {
  const std::string text =
      "wmlp-trace v1\n2 1 1\n1\n1\n1\n5 1\n";
  std::string err;
  EXPECT_FALSE(TraceFromString(text, &err).has_value());
}

TEST(TraceIo, RejectsTruncated) {
  const std::string text = "wmlp-trace v1\n2 1 1\n1\n1\n3\n0 1\n";
  std::string err;
  EXPECT_FALSE(TraceFromString(text, &err).has_value());
}

TEST(ApplyLevelMapTest, RemapsRequests) {
  Instance inst(2, 1, 3, {{8.0, 5.0, 1.0}, {8.0, 5.0, 1.0}});
  const auto merged = inst.MergeLevels();
  Trace t{inst, {{0, 2}, {1, 3}}};
  const Trace mapped = ApplyLevelMap(t, merged.instance, merged.level_map);
  EXPECT_TRUE(ValidateTrace(mapped));
  EXPECT_EQ(mapped.requests.size(), 2u);
  // Level 2 (w=5, not separated from 8) maps to merged level 1.
  EXPECT_EQ(mapped.requests[0].level, 1);
}

}  // namespace
}  // namespace wmlp
