#include <gtest/gtest.h>

#include <sstream>

#include "trace/import.h"
#include "trace/trace.h"
#include "writeback/rw_reduction.h"

namespace wmlp {
namespace {

std::optional<ImportedTrace> FromString(const std::string& text,
                                        const ImportOptions& opts = {},
                                        std::string* err = nullptr) {
  std::istringstream iss(text);
  return ImportKeyTrace(iss, opts, err);
}

TEST(Import, PlainKeysSingleLevel) {
  const auto imported = FromString("alpha\nbeta\nalpha\ngamma\n");
  ASSERT_TRUE(imported.has_value());
  EXPECT_FALSE(imported->has_ops);
  EXPECT_EQ(imported->trace.instance.num_levels(), 1);
  EXPECT_EQ(imported->trace.instance.num_pages(), 3);
  ASSERT_EQ(imported->trace.requests.size(), 4u);
  EXPECT_EQ(imported->trace.requests[0].page, 0);
  EXPECT_EQ(imported->trace.requests[2].page, 0);  // alpha reused id 0
  EXPECT_EQ(imported->key_of_page[0], "alpha");
  EXPECT_EQ(imported->key_of_page[2], "gamma");
  EXPECT_TRUE(ValidateTrace(imported->trace));
}

TEST(Import, ReadWriteOpsBecomeRwTrace) {
  ImportOptions opts;
  opts.dirty_cost = 8.0;
  opts.clean_cost = 2.0;
  const auto imported =
      FromString("x W\ny R\nx R\nz write\ny GET\n", opts);
  ASSERT_TRUE(imported.has_value());
  EXPECT_TRUE(imported->has_ops);
  EXPECT_EQ(imported->trace.instance.num_levels(), 2);
  EXPECT_EQ(imported->trace.instance.weight(0, 1), 8.0);
  EXPECT_EQ(imported->trace.instance.weight(0, 2), 2.0);
  EXPECT_EQ(imported->trace.requests[0].level, 1);  // write
  EXPECT_EQ(imported->trace.requests[1].level, 2);  // read
  EXPECT_EQ(imported->trace.requests[3].level, 1);  // "write" keyword
  // RW import converts back to a writeback trace cleanly.
  const auto wb = wb::ToWbTrace(imported->trace);
  EXPECT_EQ(wb.requests[0].op, wb::Op::kWrite);
}

TEST(Import, CommaSeparatedAndComments) {
  const auto imported =
      FromString("# a comment\nkey1,SET\n\nkey2,GET\nkey1,GET\n");
  ASSERT_TRUE(imported.has_value());
  EXPECT_TRUE(imported->has_ops);
  ASSERT_EQ(imported->trace.requests.size(), 3u);
  EXPECT_EQ(imported->trace.requests[0].level, 1);
}

TEST(Import, CacheSizeClampedToUniverse) {
  ImportOptions opts;
  opts.cache_size = 100;
  const auto imported = FromString("a\nb\n", opts);
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(imported->trace.instance.cache_size(), 2);
}

TEST(Import, MaxRequestsTruncates) {
  ImportOptions opts;
  opts.max_requests = 2;
  const auto imported = FromString("a\nb\nc\nd\n", opts);
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(imported->trace.requests.size(), 2u);
}

TEST(Import, Rejections) {
  std::string err;
  EXPECT_FALSE(FromString("", {}, &err).has_value());
  EXPECT_NE(err.find("no requests"), std::string::npos);
  EXPECT_FALSE(FromString("a X\n", {}, &err).has_value());
  EXPECT_NE(err.find("unknown op"), std::string::npos);
  ImportOptions bad;
  bad.dirty_cost = 0.5;
  EXPECT_FALSE(FromString("a\n", bad, &err).has_value());
}

TEST(Import, MixedOpAndNoOpLinesTreatedAsReads) {
  const auto imported = FromString("a W\nb\nc R\n");
  ASSERT_TRUE(imported.has_value());
  EXPECT_TRUE(imported->has_ops);
  EXPECT_EQ(imported->trace.requests[1].level, 2);  // bare line => read
}

}  // namespace
}  // namespace wmlp
