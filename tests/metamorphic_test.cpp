// Metamorphic properties the paper implies but no unit test pinned until
// now: relations between runs on *transformed* inputs, checked without
// knowing the right absolute answer.
//
//   * Weight-scaling invariance: multiplying every weight by c scales
//     every policy's eviction cost by exactly c (the model has no
//     additive terms, and decisions depend only on weight ratios). With
//     c a power of two the double arithmetic scales exactly, so the test
//     demands bitwise cost * c — any additive constant, normalization
//     bug, or absolute-epsilon comparison sneaking into a policy breaks
//     it loudly. A non-dyadic c is checked to 1e-9 relative.
//   * Cache-size monotonicity of offline OPT: a strictly larger cache
//     can only help the optimum (run the same requests, ignore the extra
//     slots). Checked on exact OPT cells (flow at ell = 1, DP at small
//     multi-level sizes).
//   * Request duplication: immediately repeating a request gives
//     waterfill a guaranteed hit with no water-level movement, so the
//     cost is unchanged (checked exactly, and >= never increases).
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/request_source.h"
#include "offline/bounds.h"
#include "registry/policy_registry.h"
#include "trace/generators.h"

namespace wmlp {
namespace {

Trace ScaleWeights(const Trace& trace, double c) {
  const Instance& inst = trace.instance;
  std::vector<std::vector<Cost>> weights;
  weights.reserve(static_cast<size_t>(inst.num_pages()));
  for (PageId p = 0; p < inst.num_pages(); ++p) {
    std::vector<Cost> row(static_cast<size_t>(inst.num_levels()));
    for (Level i = 1; i <= inst.num_levels(); ++i) {
      row[static_cast<size_t>(i - 1)] = c * inst.weight(p, i);
    }
    weights.push_back(std::move(row));
  }
  return Trace{Instance(inst.num_pages(), inst.cache_size(),
                        inst.num_levels(), std::move(weights)),
               trace.requests};
}

Cost RunPolicy(const Trace& trace, const std::string& name, uint64_t seed) {
  PolicyPtr policy = MakePolicyByName(name, seed);
  TraceSource source(trace);
  Engine engine(source, *policy);
  return engine.Run().eviction_cost;
}

TEST(MetamorphicWeightScalingTest, DyadicScalingIsExactForEveryPolicy) {
  Instance inst(40, 10, 2,
                MakeWeights(40, 2, WeightModel::kZipfPages, 8.0, 3));
  const Trace trace =
      GenZipf(std::move(inst), 2500, 0.9, LevelMix::UniformMix(2), 5);
  for (const double c : {2.0, 4.0, 1024.0}) {
    const Trace scaled = ScaleWeights(trace, c);
    for (const std::string& name : KnownPolicyNames()) {
      if (name == "marking") continue;  // ell = 1 only; covered below
      const Cost base = RunPolicy(trace, name, 42);
      const Cost after = RunPolicy(scaled, name, 42);
      EXPECT_EQ(after, c * base) << name << " c=" << c;
    }
  }
}

TEST(MetamorphicWeightScalingTest, DyadicScalingIsExactSingleLevel) {
  Instance inst(32, 8, 1,
                MakeWeights(32, 1, WeightModel::kLogUniform, 16.0, 7));
  const Trace trace =
      GenZipf(std::move(inst), 2000, 0.8, LevelMix::AllLowest(1), 9);
  const Trace scaled = ScaleWeights(trace, 8.0);
  for (const std::string& name : KnownPolicyNames()) {
    const Cost base = RunPolicy(trace, name, 17);
    const Cost after = RunPolicy(scaled, name, 17);
    EXPECT_EQ(after, 8.0 * base) << name;
  }
}

TEST(MetamorphicWeightScalingTest, NonDyadicScalingHoldsToRelativeTolerance) {
  Instance inst(24, 6, 3,
                MakeWeights(24, 3, WeightModel::kGeometricLevels, 4.0, 2));
  const Trace trace =
      GenZipf(std::move(inst), 1500, 0.7, LevelMix::UniformMix(3), 4);
  const double c = 3.0;
  const Trace scaled = ScaleWeights(trace, c);
  for (const std::string& name : KnownPolicyNames()) {
    if (name == "marking") continue;
    const Cost base = RunPolicy(trace, name, 11);
    const Cost after = RunPolicy(scaled, name, 11);
    // Non-dyadic scaling rounds differently, which may flip decisions at
    // exact ties; every registry policy breaks ties deterministically
    // without comparing against absolute constants, so the costs must
    // still agree to fp accuracy.
    EXPECT_NEAR(after, c * base, 1e-9 * (1.0 + c * base)) << name;
  }
}

// Offline OPT can only improve when the cache grows: the k-cache schedule
// is feasible verbatim for k + 1.
TEST(MetamorphicOptMonotonicityTest, FlowOptIsNonIncreasingInK) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    Instance base(12, 2, 1,
                  MakeWeights(12, 1, WeightModel::kZipfPages, 10.0, seed));
    const Trace trace =
        GenZipf(std::move(base), 300, 0.8, LevelMix::AllLowest(1), seed + 5);
    Cost previous = -1.0;
    for (int32_t k = 2; k <= 8; ++k) {
      std::vector<std::vector<Cost>> weights;
      for (PageId p = 0; p < 12; ++p) {
        weights.push_back({trace.instance.weight(p, 1)});
      }
      const Trace resized{Instance(12, k, 1, std::move(weights)),
                          trace.requests};
      const OfflineBounds bounds = ComputeOfflineBounds(resized);
      ASSERT_TRUE(bounds.exact) << "ell=1 must be exact (flow)";
      if (previous >= 0.0) {
        EXPECT_LE(bounds.lower, previous + 1e-9)
            << "seed " << seed << " k " << k;
      }
      previous = bounds.lower;
    }
  }
}

TEST(MetamorphicOptMonotonicityTest, MultiLevelDpOptIsNonIncreasingInK) {
  // n = 6, ell = 2 keeps the exact DP within its state budget.
  for (const uint64_t seed : {4u, 9u}) {
    Instance base(6, 1, 2,
                  MakeWeights(6, 2, WeightModel::kGeometricLevels, 4.0, seed));
    const Trace trace =
        GenZipf(std::move(base), 120, 0.7, LevelMix::UniformMix(2), seed + 1);
    Cost previous = -1.0;
    for (int32_t k = 1; k <= 5; ++k) {
      std::vector<std::vector<Cost>> weights;
      for (PageId p = 0; p < 6; ++p) {
        weights.push_back({trace.instance.weight(p, 1),
                           trace.instance.weight(p, 2)});
      }
      const Trace resized{Instance(6, k, 2, std::move(weights)),
                          trace.requests};
      const OfflineBounds bounds = ComputeOfflineBounds(resized);
      ASSERT_TRUE(bounds.exact) << "small multi-level must be exact (DP)";
      if (previous >= 0.0) {
        EXPECT_LE(bounds.lower, previous + 1e-9)
            << "seed " << seed << " k " << k;
      }
      previous = bounds.lower;
    }
  }
}

// Duplicating every request back-to-back: the duplicate is served by the
// copy the first occurrence just ensured, so waterfill's water levels and
// evictions are untouched.
TEST(MetamorphicDuplicationTest, WaterfillCostUnchangedByDuplication) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Instance inst(30, 8, 2,
                  MakeWeights(30, 2, WeightModel::kZipfPages, 6.0, seed));
    const Trace trace =
        GenZipf(std::move(inst), 1500, 0.8, LevelMix::UniformMix(2),
                seed + 9);
    Trace dup{trace.instance, {}};
    dup.requests.reserve(2 * trace.requests.size());
    for (const Request& r : trace.requests) {
      dup.requests.push_back(r);
      dup.requests.push_back(r);
    }
    const Cost base = RunPolicy(trace, "waterfill", 1);
    const Cost doubled = RunPolicy(dup, "waterfill", 1);
    EXPECT_LE(doubled, base) << "seed " << seed;  // the paper's property
    EXPECT_EQ(doubled, base) << "seed " << seed;  // and in fact exact
  }
}

// --- Batch-boundary-shift invariance ------------------------------------
//
// A metamorphic view of the batching contract: partition the same request
// stream into batches two different ways (here: a fixed width vs the same
// width with every boundary shifted by an offset, plus a ragged
// pseudo-random partition) and the push-mode engine must produce bitwise
// identical costs. Unlike the engine_test battery this varies the
// *partition shape*, not just the batch size, so an engine that kept
// hidden state across StepBatch calls keyed to batch boundaries would be
// caught here.

SimResult RunPartitioned(const Trace& t, const std::string& name,
                         const std::vector<int64_t>& cuts) {
  PolicyPtr policy = MakePolicyByName(name, 11);
  Engine engine(t.instance, *policy);
  int64_t at = 0;
  const int64_t n = t.length();
  for (size_t c = 0; at < n; ++c) {
    const int64_t end = c < cuts.size() ? cuts[c] : n;
    BatchResult br;
    engine.StepBatch(std::span<const Request>(t.requests.data() + at,
                                              static_cast<size_t>(end - at)),
                     br);
    at = end;
  }
  return engine.result();
}

TEST(MetamorphicBatchBoundaryTest, ShiftedBoundariesLeaveCostsBitwiseEqual) {
  Instance inst(48, 12, 3,
                MakeWeights(48, 3, WeightModel::kLogUniform, 16.0, 9));
  const Trace trace =
      GenZipf(std::move(inst), 3000, 0.85, LevelMix::UniformMix(3), 13);
  const int64_t n = trace.length();

  // Fixed-width cuts at multiples of w; shifted cuts at w*i + shift; and a
  // ragged partition whose block sizes cycle through {1, 5, 2, 31, 3}.
  auto fixed = [n](int64_t w, int64_t shift) {
    std::vector<int64_t> cuts;
    for (int64_t c = shift == 0 ? w : shift; c < n; c += w) cuts.push_back(c);
    return cuts;
  };
  std::vector<int64_t> ragged;
  {
    const int64_t widths[] = {1, 5, 2, 31, 3};
    int64_t at = 0;
    for (size_t i = 0; at < n; ++i) {
      at += widths[i % 5];
      if (at < n) ragged.push_back(at);
    }
  }

  for (const std::string& name :
       {std::string("lru"), std::string("landlord"), std::string("waterfill"),
        std::string("randomized")}) {
    const SimResult ref = RunPartitioned(trace, name, fixed(64, 0));
    for (const auto& cuts :
         {fixed(64, 1), fixed(64, 17), fixed(64, 63), ragged}) {
      const SimResult got = RunPartitioned(trace, name, cuts);
      EXPECT_EQ(got.eviction_cost, ref.eviction_cost) << name;
      EXPECT_EQ(got.fetch_cost, ref.fetch_cost) << name;
      EXPECT_EQ(got.hits, ref.hits) << name;
      EXPECT_EQ(got.misses, ref.misses) << name;
      EXPECT_EQ(got.evictions, ref.evictions) << name;
      EXPECT_EQ(got.fetches, ref.fetches) << name;
    }
  }
}

}  // namespace
}  // namespace wmlp
