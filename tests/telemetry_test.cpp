// Telemetry subsystem tests: registry semantics (counter/gauge/histogram
// cells, cross-thread merge, thread-retirement fold, bucket placement),
// exporter formats (Prometheus text, snapshot JSON roundtrip through the
// bundled reader, trace_event JSON), the CLI option validator, and the
// determinism contract: toggling telemetry at runtime must not change a
// byte of the serving layer's cost/count output.
//
// The registry is a process-wide leaky singleton, so every test uses its
// own metric names (test_* prefix) and asserts on the values those names
// accumulate — never on global registry state.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"
#include "telemetry/export.h"
#include "telemetry/health.h"
#include "telemetry/http_server.h"
#include "telemetry/snapshot_reader.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_span.h"
#include "trace/generators.h"

namespace wmlp::telemetry {
namespace {

// Collects and returns the snapshot for one metric name; fails the test if
// absent.
MetricSnapshot Find(const std::string& name) {
  for (const MetricSnapshot& m : Registry::Get().Collect()) {
    if (m.name == name) return m;
  }
  ADD_FAILURE() << "metric not found: " << name;
  return MetricSnapshot{};
}

bool Registered(const std::string& name) {
  for (const MetricSnapshot& m : Registry::Get().Collect()) {
    if (m.name == name) return true;
  }
  return false;
}

TEST(RegistryTest, CounterAccumulatesAndHandleIsIdempotent) {
  Counter& c = Registry::Get().GetCounter("test_counter_total");
  c.Inc();
  c.Add(41);
  EXPECT_EQ(Find("test_counter_total").counter_value, 42u);
  // Same name returns the same cell.
  Registry::Get().GetCounter("test_counter_total").Inc();
  EXPECT_EQ(Find("test_counter_total").counter_value, 43u);
}

TEST(RegistryTest, GaugeSetOverwritesThisThreadsContribution) {
  Gauge& g = Registry::Get().GetGauge("test_gauge");
  g.Set(2.5);
  g.Set(7.25);  // overwrite, not add
  EXPECT_DOUBLE_EQ(Find("test_gauge").gauge_value, 7.25);
  g.Add(0.75);
  EXPECT_DOUBLE_EQ(Find("test_gauge").gauge_value, 8.0);
}

TEST(RegistryTest, MergesAcrossLiveAndRetiredThreads) {
  Counter& c = Registry::Get().GetCounter("test_mt_total");
  Gauge& g = Registry::Get().GetGauge("test_mt_gauge");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &g] {
      for (int i = 0; i < kIncrements; ++i) c.Inc();
      g.Set(1.5);  // additive-gauge convention: exported value is the sum
    });
  }
  for (std::thread& t : threads) t.join();
  // All worker threads have exited, so this also exercises the
  // retire-and-fold path (their shards are gone, the values must not be).
  EXPECT_EQ(Find("test_mt_total").counter_value,
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(Find("test_mt_gauge").gauge_value, kThreads * 1.5);
}

TEST(RegistryTest, PowerOfTwoHistogramBucketPlacement) {
  Histogram& h = Registry::Get().GetHistogram("test_pow2_hist",
                                              HistogramLayout::PowerOfTwo());
  h.Observe(0.0);    // bucket 0
  h.Observe(1.0);    // bucket 0 (v < 2)
  h.Observe(2.0);    // bucket 1
  h.Observe(3.9);    // bucket 1
  h.Observe(4.0);    // bucket 2
  h.Observe(1e300);  // clamped into bucket 63
  h.Observe(std::numeric_limits<double>::quiet_NaN());  // dropped
  const MetricSnapshot m = Find("test_pow2_hist");
  ASSERT_EQ(m.bucket_counts.size(), 64u);
  EXPECT_EQ(m.hist_count, 6u);
  EXPECT_EQ(m.bucket_counts[0], 2u);
  EXPECT_EQ(m.bucket_counts[1], 2u);
  EXPECT_EQ(m.bucket_counts[2], 1u);
  EXPECT_EQ(m.bucket_counts[63], 1u);
  EXPECT_DOUBLE_EQ(m.hist_sum, 0.0 + 1.0 + 2.0 + 3.9 + 4.0 + 1e300);
}

TEST(RegistryTest, ExplicitHistogramUsesInclusiveUpperEdges) {
  Histogram& h = Registry::Get().GetHistogram(
      "test_explicit_hist", HistogramLayout::Explicit({1.0, 10.0, 100.0}));
  h.Observe(1.0);    // == bound: bucket 0 (inclusive)
  h.Observe(1.5);    // bucket 1
  h.Observe(10.0);   // bucket 1
  h.Observe(99.0);   // bucket 2
  h.Observe(100.5);  // overflow bucket 3
  const MetricSnapshot m = Find("test_explicit_hist");
  ASSERT_EQ(m.bucket_counts.size(), 4u);
  EXPECT_FALSE(m.pow2);
  EXPECT_EQ(m.bucket_counts[0], 1u);
  EXPECT_EQ(m.bucket_counts[1], 2u);
  EXPECT_EQ(m.bucket_counts[2], 1u);
  EXPECT_EQ(m.bucket_counts[3], 1u);
}

TEST(RegistryTest, ResetValuesForTestZeroesValuesButKeepsHandles) {
  Counter& c = Registry::Get().GetCounter("test_reset_total");
  c.Add(5);
  // Reset zeroes EVERY metric in the process; only safe because tests in
  // this binary assert on their own names after their own writes.
  Registry::Get().ResetValuesForTest();
  EXPECT_EQ(Find("test_reset_total").counter_value, 0u);
  c.Add(3);  // old handle still points at the (zeroed) cell
  EXPECT_EQ(Find("test_reset_total").counter_value, 3u);
}

TEST(ExportTest, PrometheusTextFormatsTypesAndLabels) {
  Registry::Get().GetCounter("test_prom_total{shard=\"3\"}").Add(5);
  Registry::Get().GetGauge("test_prom_gauge").Set(1.5);
  Histogram& h = Registry::Get().GetHistogram(
      "test_prom_hist", HistogramLayout::Explicit({1.0, 2.0}));
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(9.0);
  std::ostringstream os;
  WritePrometheusText(os, Registry::Get().Collect());
  const std::string text = os.str();
  EXPECT_NE(text.find("test_prom_total{shard=\"3\"} 5"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge 1.5"), std::string::npos);
  // Histogram exposition: cumulative buckets, +Inf, _count and _sum.
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 3"), std::string::npos);
}

TEST(ExportTest, SnapshotJsonRoundTripsThroughTheReader) {
  Registry::Get().GetCounter("test_rt_total").Add(7);
  Registry::Get().GetGauge("test_rt_gauge").Set(-2.5);
  Histogram& h = Registry::Get().GetHistogram("test_rt_hist",
                                              HistogramLayout::PowerOfTwo());
  h.Observe(5.0);

  const std::string path = testing::TempDir() + "/telemetry_rt.json";
  std::string err;
  ASSERT_TRUE(WriteSnapshotJson(path, 1.25, &err)) << err;

  SnapshotFile snapshot;
  ASSERT_TRUE(ReadSnapshotFile(path, &snapshot, &err)) << err;
  EXPECT_EQ(snapshot.schema, "wmlp-telemetry-snapshot-v1");
  EXPECT_EQ(snapshot.telemetry_compiled, kEnabled);
  EXPECT_DOUBLE_EQ(snapshot.uptime_seconds, 1.25);

  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.name == "test_rt_total") {
      saw_counter = true;
      EXPECT_EQ(m.type, MetricType::kCounter);
      EXPECT_EQ(m.counter_value, 7u);
    } else if (m.name == "test_rt_gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(m.gauge_value, -2.5);
    } else if (m.name == "test_rt_hist") {
      saw_hist = true;
      EXPECT_TRUE(m.pow2);
      ASSERT_EQ(m.bucket_counts.size(), 64u);
      EXPECT_GE(m.hist_count, 1u);
      EXPECT_GE(m.bucket_counts[2], 1u);  // 5.0 -> [4, 8)
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
  std::remove(path.c_str());
}

TEST(ExportTest, TraceEventsJsonParsesAndPreservesFields) {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{"alpha", "cat_a", 1000, 2500, 0});
  events.push_back(TraceEvent{"beta", "cat_b", 4000, 1, 3});
  const std::string json = TraceEventsToJson(events);

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(ParseJson(json, &doc, &err)) << err;
  const JsonValue* trace_events = doc.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  ASSERT_EQ(trace_events->array.size(), 2u);
  const JsonValue& alpha = trace_events->array[0];
  EXPECT_EQ(alpha.Find("name")->string_value, "alpha");
  EXPECT_EQ(alpha.Find("cat")->string_value, "cat_a");
  EXPECT_EQ(alpha.Find("ph")->string_value, "X");
  EXPECT_DOUBLE_EQ(alpha.Find("ts")->number_value, 1.0);    // 1000 ns -> µs
  EXPECT_DOUBLE_EQ(alpha.Find("dur")->number_value, 2.5);
  EXPECT_DOUBLE_EQ(trace_events->array[1].Find("tid")->number_value, 3.0);
}

TEST(ValidateOptionsTest, AcceptsTheCommonShapes) {
  TelemetryRunOptions options;
  EXPECT_EQ(ValidateTelemetryRunOptions(options), "");  // all off
  options.telemetry_out = "snap.json";
  options.trace_out = "trace.json";
  options.stats_interval = 1.0;
  EXPECT_EQ(ValidateTelemetryRunOptions(options), "");
}

TEST(ValidateOptionsTest, RejectsBadIntervalsAndPaths) {
  TelemetryRunOptions options;
  options.stats_interval = -1.0;
  EXPECT_NE(ValidateTelemetryRunOptions(options), "");
  options.stats_interval = 0.001;  // below the 10 ms floor
  EXPECT_NE(ValidateTelemetryRunOptions(options), "");
  options.stats_interval = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(ValidateTelemetryRunOptions(options), "");
  options.stats_interval = 1e9;  // above one day
  EXPECT_NE(ValidateTelemetryRunOptions(options), "");

  options.stats_interval = 0.0;
  options.telemetry_out = "same.json";
  options.trace_out = "same.json";
  EXPECT_NE(ValidateTelemetryRunOptions(options), "");

  options.trace_out.clear();
  options.telemetry_out = std::string("bad\npath.json");
  EXPECT_NE(ValidateTelemetryRunOptions(options), "");
}

TEST(TracerTest, SpansRecordOnlyWhileArmed) {
  // Drain whatever instrumentation buffered before this test.
  Tracer::Drain();
  { TraceSpan span("test.unarmed", "test"); }
  EXPECT_TRUE(Tracer::Drain().empty());

  Tracer::Arm();
  { TraceSpan span("test.armed", "test"); }
  Tracer::Disarm();
  { TraceSpan span("test.after", "test"); }
  const std::vector<TraceEvent> events = Tracer::Drain();
  if (kEnabled) {
    bool saw_armed = false;
    for (const TraceEvent& e : events) {
      EXPECT_STRNE(e.name, "test.unarmed");
      EXPECT_STRNE(e.name, "test.after");
      if (std::string(e.name) == "test.armed") {
        saw_armed = true;
        EXPECT_GE(e.duration_ns, 0);
      }
    }
    EXPECT_TRUE(saw_armed);
  } else {
    // Compiled out: arming is ignored entirely.
    EXPECT_TRUE(events.empty());
  }
}

// --- The determinism contract -------------------------------------------
//
// ServeTrace's cost/count fields must be bitwise identical with telemetry
// recording on and off; telemetry observes, it never steers. In OFF builds
// the toggle is inert and the comparison is trivially true — the test
// earns its keep in the WMLP_TELEMETRY=ON configurations (the telemetry CI
// job and the telemetry TSan matrix entry).

std::string ReportCsv(const ServeReport& report) {
  std::ostringstream os;
  os.precision(17);
  os << "requests," << report.requests << "\n";
  os << "eviction_cost," << report.totals.eviction_cost << "\n";
  os << "fetch_cost," << report.totals.fetch_cost << "\n";
  os << "hits," << report.totals.hits << "\n";
  os << "misses," << report.totals.misses << "\n";
  os << "evictions," << report.totals.evictions << "\n";
  os << "fetches," << report.totals.fetches << "\n";
  for (size_t s = 0; s < report.shards.size(); ++s) {
    const ShardReport& sr = report.shards[s];
    os << "shard" << s << "," << sr.requests << ","
       << sr.result.eviction_cost << "," << sr.result.fetch_cost << ","
       << sr.result.hits << "," << sr.result.misses << ","
       << sr.result.evictions << "," << sr.result.fetches << "\n";
  }
  return os.str();
}

TEST(DeterminismTest, TelemetryOnOffLeavesServeCsvByteIdentical) {
  Instance inst(48, 12, 2,
                MakeWeights(48, 2, WeightModel::kZipfPages, 8.0, 3));
  const Trace trace =
      GenZipf(std::move(inst), 3000, 0.9, LevelMix::UniformMix(2), 11);
  ServeOptions options;
  options.policy = "waterfill";
  options.shards = 3;
  options.clients = 2;
  options.batch = 64;
  options.seed = 42;

  // Telemetry fully quiet: tracer disarmed.
  Tracer::Disarm();
  const std::string off_csv = ReportCsv(ServeTrace(trace, options));

  // Telemetry fully loud: tracer armed, spans recording (ON builds).
  Tracer::Arm();
  const std::string on_csv = ReportCsv(ServeTrace(trace, options));
  Tracer::Disarm();
  Tracer::Drain();  // discard the buffered spans

  EXPECT_EQ(off_csv, on_csv);
}

// The full observability plane — per-shard watchdog observers, the
// time-series sampler ticking fast, and the live HTTP endpoint being
// scraped — must leave every cost/count byte unchanged. The plane only
// reads serve-path state; this is the test that keeps it that way.
TEST(DeterminismTest, ObservabilityPlaneLeavesServeCsvByteIdentical) {
  Instance inst(48, 12, 2,
                MakeWeights(48, 2, WeightModel::kZipfPages, 8.0, 3));
  const Trace trace =
      GenZipf(std::move(inst), 3000, 0.9, LevelMix::UniformMix(2), 13);
  ServeOptions options;
  options.policy = "waterfill";
  options.shards = 3;
  options.clients = 2;
  options.batch = 64;
  options.seed = 42;

  // Plane fully off.
  const std::string off_csv = ReportCsv(ServeTrace(trace, options));

  // Plane fully on: sampler at the minimum period, endpoint live and
  // scraped mid-session, watchdogs attached with a generous threshold.
  health::CostRatioHealth::Get().ResetForTest();
  TelemetryRunOptions topts;
  topts.sample_interval = 0.01;
  topts.sample_retention = 128;
  topts.http_port = 0;
  TelemetrySession session(topts);
  ASSERT_TRUE(session.start_error().empty()) << session.start_error();
  ServeOptions on = options;
  on.watchdog = true;
  on.watchdog_threshold = 1e6;
  const std::string on_csv = ReportCsv(ServeTrace(trace, on));
  int status = 0;
  std::string body, err;
  ASSERT_TRUE(HttpGet("127.0.0.1", session.http_port(), "/metrics",
                      &status, &body, &err))
      << err;
  EXPECT_EQ(status, 200);
  ASSERT_TRUE(HttpGet("127.0.0.1", session.http_port(), "/healthz",
                      &status, &body, &err))
      << err;
  EXPECT_EQ(status, 200) << "watchdog tripped a 1e6 threshold: " << body;
  ASSERT_TRUE(session.Finish(&err)) << err;

  EXPECT_EQ(off_csv, on_csv);

  // And the watchdog actually observed the run.
  const health::HealthSnapshot snap =
      health::CostRatioHealth::Get().Snapshot();
  EXPECT_EQ(snap.sources, 3);
  EXPECT_GT(snap.alg_cost, 0.0);
}

TEST(InstrumentationTest, ServeRunPopulatesHotPathCounters) {
  if (!kEnabled) GTEST_SKIP() << "built without WMLP_TELEMETRY";
  Instance inst(32, 8, 2,
                MakeWeights(32, 2, WeightModel::kZipfPages, 4.0, 3));
  const Trace trace =
      GenZipf(std::move(inst), 2000, 0.9, LevelMix::UniformMix(2), 7);
  ServeOptions options;
  options.policy = "waterfill";
  options.shards = 2;
  options.clients = 2;
  options.batch = 32;

  Registry::Get().ResetValuesForTest();
  (void)ServeTrace(trace, options);

  EXPECT_GT(Find("wmlp_engine_steps_total").counter_value, 0u);
  EXPECT_GT(Find("wmlp_waterfill_heap_push_total").counter_value, 0u);
  EXPECT_GT(Find("wmlp_inbox_pop_requests_total").counter_value, 0u);
  EXPECT_GT(Find("wmlp_inbox_holdback_depth").hist_count, 0u);
  EXPECT_GT(Find("wmlp_serve_shard_requests_total{shard=\"0\"}")
                .counter_value,
            0u);
  EXPECT_TRUE(Registered("wmlp_serve_runs_total"));
}

}  // namespace
}  // namespace wmlp::telemetry
