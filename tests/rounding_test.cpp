#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "baselines/lru.h"
#include "core/randomized.h"
#include "core/rounding_multilevel.h"
#include "core/rounding_weighted.h"
#include "core/weight_classes.h"
#include "offline/weighted_opt.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wmlp {
namespace {

TEST(WeightClasses, ClassOf) {
  EXPECT_EQ(WeightClasses::ClassOf(1.0), 0);
  EXPECT_EQ(WeightClasses::ClassOf(1.5), 1);
  EXPECT_EQ(WeightClasses::ClassOf(2.0), 1);
  EXPECT_EQ(WeightClasses::ClassOf(2.1), 2);
  EXPECT_EQ(WeightClasses::ClassOf(4.0), 2);
  EXPECT_EQ(WeightClasses::ClassOf(1024.0), 10);
}

TEST(WeightClasses, PerInstancePrecomputation) {
  Instance inst(2, 1, 2, {{8.0, 2.0}, {3.0, 1.0}});
  WeightClasses wc(inst);
  EXPECT_EQ(wc.class_of(0, 1), 3);
  EXPECT_EQ(wc.class_of(0, 2), 1);
  EXPECT_EQ(wc.class_of(1, 1), 2);
  EXPECT_EQ(wc.class_of(1, 2), 0);
  EXPECT_EQ(wc.num_classes(), 4);
}

// The strict simulator validates feasibility (serves every request, never
// exceeds k) on every step, so clean runs double as invariant tests
// (Lemma 4.6 / 4.13).

struct RoundingCase {
  int32_t n;
  int32_t k;
  int32_t ell;
  double alpha;
  uint64_t seed;
};

class RoundingSweep : public ::testing::TestWithParam<RoundingCase> {};

TEST_P(RoundingSweep, FeasibleAndServing) {
  const RoundingCase& c = GetParam();
  Instance inst(c.n, c.k, c.ell,
                MakeWeights(c.n, c.ell, WeightModel::kLogUniform, 16.0,
                            c.seed));
  const Trace t = GenZipf(inst, 600, c.alpha,
                          c.ell == 1 ? LevelMix::AllLowest(1)
                                     : LevelMix::UniformMix(c.ell),
                          c.seed + 1);
  PolicyPtr p = MakeRandomizedPolicy(c.seed + 2);
  const SimResult res = Simulate(t, *p);
  EXPECT_GT(res.hits + res.misses, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RoundingSweep,
    ::testing::Values(RoundingCase{6, 2, 1, 0.5, 1},
                      RoundingCase{16, 4, 1, 0.9, 2},
                      RoundingCase{32, 8, 1, 0.7, 3},
                      RoundingCase{8, 2, 2, 0.6, 4},
                      RoundingCase{16, 4, 2, 0.8, 5},
                      RoundingCase{12, 3, 3, 0.7, 6},
                      RoundingCase{24, 6, 4, 0.9, 7},
                      RoundingCase{9, 8, 1, 0.5, 8},
                      RoundingCase{64, 16, 2, 1.0, 9}),
    [](const auto& suite_info) {
      // Built by append: gcc 12's -O3 -Werror=restrict misfires on the
      // operator+(const char*, string&&) chain here.
      const RoundingCase& c = suite_info.param;
      std::string name = "n";
      name += std::to_string(c.n);
      name += "k";
      name += std::to_string(c.k);
      name += "ell";
      name += std::to_string(c.ell);
      name += "s";
      name += std::to_string(c.seed);
      return name;
    });

TEST(RoundedWeighted, RejectsMultiLevelInstances) {
  Instance inst(2, 1, 2, {{4.0, 1.0}, {4.0, 1.0}});
  Trace t{inst, {{0, 2}}};
  RoundedWeightedPaging p(MakeFractionalStack(), 1);
  EXPECT_DEATH(Simulate(t, p), "ell == 1");
}

TEST(RoundedWeighted, BetaDefault) {
  Instance inst = Instance::Uniform(8, 4);
  RoundedWeightedPaging p(MakeFractionalStack(), 1);
  Trace t{inst, {{0, 1}}};
  Simulate(t, p);
  EXPECT_NEAR(p.beta(), 4.0 * std::log(5.0), 1e-9);
}

TEST(RoundedWeighted, DeterministicGivenSeed) {
  Instance inst = Instance::Uniform(16, 4);
  const Trace t = GenZipf(inst, 400, 0.8, LevelMix::AllLowest(1), 20);
  RoundedWeightedPaging a(MakeFractionalStack(), 9);
  RoundedWeightedPaging b(MakeFractionalStack(), 9);
  EXPECT_EQ(Simulate(t, a).eviction_cost, Simulate(t, b).eviction_cost);
}

TEST(RoundedWeighted, CostTracksFractionalTimesBeta) {
  // Expected integral cost <= O(beta) * fractional cost + resets (Lemmas
  // 4.11/4.12). Measured with generous slack across seeds.
  Instance inst(24, 6, 1,
                MakeWeights(24, 1, WeightModel::kLogUniform, 8.0, 21));
  const Trace t = GenZipf(inst, 1500, 0.8, LevelMix::AllLowest(1), 22);
  RunningStat integral;
  double frac_cost = 0.0;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    RoundedWeightedPaging p(MakeFractionalStack(), seed);
    integral.Add(Simulate(t, p).eviction_cost);
    frac_cost = p.fractional().lp_cost();
  }
  ASSERT_GT(frac_cost, 0.0);
  const double beta = 4.0 * std::log(7.0);
  EXPECT_LE(integral.mean(), 3.0 * beta * frac_cost + 50.0);
}

TEST(RoundedWeighted, ResetEvictionsAreRare) {
  // Lemma 4.12: with beta = 4 log k the reset cost is O(1) x fractional;
  // in particular resets should be a small fraction of all evictions.
  Instance inst = Instance::Uniform(32, 8);
  const Trace t = GenZipf(inst, 3000, 0.9, LevelMix::AllLowest(1), 23);
  int64_t resets = 0, evictions = 0;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    RoundedWeightedPaging p(MakeFractionalStack(), seed);
    const SimResult res = Simulate(t, p);
    resets += p.reset_evictions();
    evictions += res.evictions;
  }
  ASSERT_GT(evictions, 0);
  EXPECT_LT(static_cast<double>(resets),
            0.2 * static_cast<double>(evictions) + 8.0);
}

TEST(RoundedWeighted, MarginalsMatchProductDistribution) {
  // Coupling sanity (Lemma 4.9): across many independent runs, the
  // probability that a page is in the cache at a fixed time is at most the
  // product-distribution marginal 1 - y_p(t) ... and empirically close to
  // it for most pages. We check the upper bound with statistical slack.
  Instance inst = Instance::Uniform(10, 5);
  const Trace t = GenZipf(inst, 120, 0.6, LevelMix::AllLowest(1), 24);

  // Final fractional state (deterministic).
  FractionalPolicyPtr frac = MakeFractionalStack();
  frac->Attach(inst);
  for (Time i = 0; i < t.length(); ++i) {
    frac->Serve(i, t.requests[static_cast<size_t>(i)]);
  }
  const double beta = 4.0 * std::log(6.0);
  std::vector<double> y(10);
  for (PageId p = 0; p < 10; ++p) {
    y[static_cast<size_t>(p)] = std::min(1.0, beta * frac->U(p, 1));
  }

  const int kRuns = 400;
  std::vector<int> present(10, 0);
  for (int run = 0; run < kRuns; ++run) {
    RoundedWeightedPaging policy(MakeFractionalStack(),
                                 static_cast<uint64_t>(run));
    // Track presence at the end by replaying and inspecting the cache via
    // the event log.
    std::vector<CacheEvent> log;
    SimOptions opts;
    opts.event_log = &log;
    Simulate(t, policy, opts);
    std::vector<bool> in_cache(10, false);
    for (const auto& ev : log) {
      in_cache[static_cast<size_t>(ev.page)] =
          ev.kind == CacheEvent::Kind::kFetch;
    }
    for (PageId p = 0; p < 10; ++p) {
      if (in_cache[static_cast<size_t>(p)]) ++present[static_cast<size_t>(p)];
    }
  }
  for (PageId p = 0; p < 10; ++p) {
    const double empirical =
        static_cast<double>(present[static_cast<size_t>(p)]) / kRuns;
    const double marginal = 1.0 - y[static_cast<size_t>(p)];
    // Subset coupling: Pr[p in C] <= Pr[p in U] = marginal (+ noise).
    EXPECT_LE(empirical, marginal + 0.08)
        << "page " << p << " empirical " << empirical << " marginal "
        << marginal;
  }
}

TEST(RoundedMultiLevel, PrefixMarginalsBoundedByCoupledDistribution) {
  // Multi-level coupling (Section 4.3.3): for every prefix (p, 1..i), the
  // probability that the integral cache holds a copy at level <= i is at
  // most the coupled product distribution's marginal 1 - v(p, i) with
  // v = min(beta * u, 1). Checked at the final time step over many runs.
  Instance inst(8, 4, 2,
                MakeWeights(8, 2, WeightModel::kGeometricLevels, 8.0, 77));
  const Trace t = GenZipf(inst, 150, 0.7, LevelMix::UniformMix(2), 78);

  FractionalPolicyPtr frac = MakeFractionalStack();
  frac->Attach(inst);
  for (Time i = 0; i < t.length(); ++i) {
    frac->Serve(i, t.requests[static_cast<size_t>(i)]);
  }
  const double beta = 4.0 * std::log(5.0);

  const int kRuns = 300;
  // counts[p][i-1]: runs whose final cache holds a copy of p at level <= i.
  std::vector<std::array<int, 2>> prefix_count(8, {0, 0});
  for (int run = 0; run < kRuns; ++run) {
    RoundedMultiLevel policy(MakeFractionalStack(),
                             static_cast<uint64_t>(run));
    CacheState cache(inst);
    CacheOps ops(inst, cache);
    policy.Attach(inst);
    for (Time i = 0; i < t.length(); ++i) {
      ops.set_time(i);
      policy.Serve(i, t.requests[static_cast<size_t>(i)], ops);
    }
    for (PageId p = 0; p < 8; ++p) {
      const Level lvl = cache.level_of(p);
      if (lvl == 0) continue;
      for (Level i = lvl; i <= 2; ++i) {
        ++prefix_count[static_cast<size_t>(p)][static_cast<size_t>(i - 1)];
      }
    }
  }
  for (PageId p = 0; p < 8; ++p) {
    for (Level i = 1; i <= 2; ++i) {
      const double empirical =
          static_cast<double>(
              prefix_count[static_cast<size_t>(p)][static_cast<size_t>(
                  i - 1)]) /
          kRuns;
      const double marginal =
          1.0 - std::min(1.0, beta * frac->U(p, i));
      EXPECT_LE(empirical, marginal + 0.09)
          << "p=" << p << " prefix<=" << i << " empirical " << empirical
          << " marginal " << marginal;
    }
  }
}

TEST(RoundedMultiLevel, OneCopyInvariantHolds) {
  // Structural: CacheState enforces one copy per page; a clean run on a
  // level-heavy trace exercises the demote path (Lemma 4.13).
  Instance inst(10, 3, 4,
                MakeWeights(10, 4, WeightModel::kGeometricLevels, 64.0, 25));
  const Trace t = GenZipf(inst, 800, 0.8, LevelMix::UniformMix(4), 26);
  RoundedMultiLevel p(MakeFractionalStack(), 5);
  const SimResult res = Simulate(t, *&p);
  EXPECT_GT(res.misses, 0);
}

TEST(RoundedMultiLevel, EquivalentBehaviorOnSingleLevel) {
  // Algorithm 2 with ell = 1 degenerates to Algorithm 1's structure: both
  // must be feasible and produce comparable costs on the same trace.
  Instance inst = Instance::Uniform(16, 4);
  const Trace t = GenZipf(inst, 800, 0.8, LevelMix::AllLowest(1), 27);
  RunningStat alg1, alg2;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    RoundedWeightedPaging p1(MakeFractionalStack(), seed);
    alg1.Add(Simulate(t, p1).eviction_cost);
    RoundedMultiLevel p2(MakeFractionalStack(), seed);
    alg2.Add(Simulate(t, p2).eviction_cost);
  }
  EXPECT_LT(std::abs(alg1.mean() - alg2.mean()),
            0.5 * std::max(alg1.mean(), alg2.mean()) + 20.0);
}

TEST(RoundedMultiLevel, DemotionsHappenOnReadHeavyTail) {
  // Write-then-read-heavy workload: fractional mass shifts toward cheap
  // copies, so the rounding must issue replace-with-lower-level actions.
  Instance inst(8, 3, 2,
                MakeWeights(8, 2, WeightModel::kGeometricLevels, 8.0, 28));
  std::vector<Request> reqs;
  Rng rng(29);
  for (int i = 0; i < 600; ++i) {
    const PageId p = static_cast<PageId>(rng.NextBounded(8));
    reqs.push_back(Request{p, i < 100 ? 1 : 2});
  }
  Trace t{inst, reqs};
  RoundedMultiLevel p(MakeFractionalStack(), 30);
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, p, opts);
  // A demotion shows as evict(level 1) + fetch(level 2) of the same page at
  // the same time stamp.
  bool saw_demotion = false;
  for (size_t i = 0; i + 1 < log.size(); ++i) {
    if (log[i].kind == CacheEvent::Kind::kEvict && log[i].level == 1 &&
        log[i + 1].kind == CacheEvent::Kind::kFetch &&
        log[i + 1].page == log[i].page && log[i + 1].level == 2) {
      saw_demotion = true;
      break;
    }
  }
  EXPECT_TRUE(saw_demotion);
}

TEST(Randomized, FactoryDispatch) {
  Instance single = Instance::Uniform(8, 4);
  PolicyPtr p1 = MakeRandomizedPolicy(1);
  Trace t1{single, {{0, 1}}};
  Simulate(t1, *p1);
  EXPECT_NE(p1->name().find("rounded("), std::string::npos);

  Instance multi(4, 2, 2, MakeWeights(4, 2, WeightModel::kGeometricLevels,
                                      4.0, 31));
  PolicyPtr p2 = MakeRandomizedPolicy(1);
  Trace t2{multi, {{0, 2}}};
  Simulate(t2, *p2);
  EXPECT_NE(p2->name().find("rounded-ml("), std::string::npos);
}

TEST(Randomized, SeparatesFromLruOnLoopAtLargeK) {
  // The k-vs-log^2(k) separation needs k large enough that 4 ln k << k;
  // at k = 64 the randomized ratio must drop well below LRU's ~k. (At
  // k = 8, log^2 k ~ k and no separation is expected — that regime is
  // exercised by the E2 experiment instead.)
  const int32_t k = 64;
  Instance inst = Instance::Uniform(k + 1, k);
  const Trace t = GenLoop(inst, 6000, k + 1, LevelMix::AllLowest(1));
  LruPolicy lru;
  const double lru_cost = Simulate(t, lru).eviction_cost;
  RunningStat rnd;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    PolicyPtr p = MakeRandomizedPolicy(seed);
    rnd.Add(Simulate(t, *p).eviction_cost);
  }
  EXPECT_LT(rnd.mean(), 0.8 * lru_cost);
}

TEST(Randomized, LoopCostBoundedByBetaTimesFractional) {
  // Lemmas 4.11/4.12: expected integral cost <= beta * fractional + O(1) *
  // fractional; checked directly on the adversarial loop where the bound
  // is tight.
  Instance inst = Instance::Uniform(9, 8);
  const Trace t = GenLoop(inst, 3000, 9, LevelMix::AllLowest(1));
  RunningStat rnd;
  double frac = 0.0, beta = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    RoundedWeightedPaging p(MakeFractionalStack(), seed);
    rnd.Add(Simulate(t, p).eviction_cost);
    frac = p.fractional().lp_cost();
    beta = p.beta();
  }
  ASSERT_GT(frac, 0.0);
  EXPECT_LE(rnd.mean(), (beta + 2.0) * frac + 50.0);
}

TEST(Randomized, RatioBoundedOnSmallExactInstances) {
  // Measured competitive ratio against the exact OPT stays within a very
  // generous O(log^2 k) envelope on random weighted traces.
  Rng seeds(32);
  for (int trial = 0; trial < 3; ++trial) {
    Instance inst(12, 4, 1,
                  MakeWeights(12, 1, WeightModel::kLogUniform, 16.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 600, 0.7, LevelMix::AllLowest(1),
                            seeds.Next());
    const Cost opt = WeightedCachingOpt(t);
    if (opt < 1.0) continue;
    RunningStat costs;
    for (uint64_t seed = 0; seed < 4; ++seed) {
      PolicyPtr p = MakeRandomizedPolicy(seed);
      costs.Add(Simulate(t, *p).eviction_cost);
    }
    const double logk = std::log(5.0);
    EXPECT_LE(costs.mean(), 20.0 * logk * logk * opt + 100.0)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace wmlp
