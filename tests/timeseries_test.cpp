// Time-series sampler tests, driven deterministically through the public
// SampleOnce(now) hook — no sleeping, no wall clock. The registry is a
// process-wide singleton, so each test uses its own tstest_* metric names
// and locates its series by name in the snapshot.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"
#include "telemetry/timeseries.h"

namespace wmlp::telemetry {
namespace {

const MetricSeries* FindSeries(const SamplerSnapshot& snapshot,
                               const std::string& name) {
  for (const MetricSeries& s : snapshot.series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(TimeseriesOptionsTest, ValidatorRejectsOutOfRange) {
  TimeseriesOptions options;
  EXPECT_EQ(ValidateTimeseriesOptions(options), "");
  options.period_seconds = 0.001;
  EXPECT_NE(ValidateTimeseriesOptions(options), "");
  options.period_seconds = 4000.0;
  EXPECT_NE(ValidateTimeseriesOptions(options), "");
  options.period_seconds = 1.0;
  options.retention = 1;
  EXPECT_NE(ValidateTimeseriesOptions(options), "");
  options.retention = (int64_t{1} << 20) + 1;
  EXPECT_NE(ValidateTimeseriesOptions(options), "");
}

TEST(TimeseriesSamplerTest, CounterSeriesDerivesRates) {
  Counter& c = Registry::Get().GetCounter("tstest_rate_total");
  TimeseriesOptions options;
  options.retention = 16;
  TimeseriesSampler sampler(options);

  sampler.SampleOnce(0.0);
  c.Add(100);
  sampler.SampleOnce(1.0);
  c.Add(300);
  sampler.SampleOnce(3.0);

  const SamplerSnapshot snapshot = sampler.Snapshot();
  EXPECT_EQ(snapshot.ticks, 3);
  const MetricSeries* s = FindSeries(snapshot, "tstest_rate_total");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->type, MetricType::kCounter);
  ASSERT_EQ(s->times.size(), 3u);
  ASSERT_EQ(s->values.size(), 3u);
  // Values are absolute; rates are per-second deltas pairing with the
  // later tick: (100-0)/1 = 100, (400-100)/2 = 150.
  EXPECT_DOUBLE_EQ(s->values[1] - s->values[0], 100.0);
  EXPECT_DOUBLE_EQ(s->values[2] - s->values[0], 400.0);
  ASSERT_EQ(s->rates.size(), 2u);
  EXPECT_DOUBLE_EQ(s->rates[0], 100.0);
  EXPECT_DOUBLE_EQ(s->rates[1], 150.0);
  EXPECT_FALSE(s->has_quantiles);
}

TEST(TimeseriesSamplerTest, GaugeSeriesKeepsValuesWithoutRates) {
  Gauge& g = Registry::Get().GetGauge("tstest_gauge");
  TimeseriesOptions options;
  options.retention = 8;
  TimeseriesSampler sampler(options);
  g.Set(2.5);
  sampler.SampleOnce(0.0);
  g.Set(7.25);
  sampler.SampleOnce(1.0);

  const SamplerSnapshot snapshot = sampler.Snapshot();
  const MetricSeries* s = FindSeries(snapshot, "tstest_gauge");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->type, MetricType::kGauge);
  ASSERT_EQ(s->values.size(), 2u);
  EXPECT_DOUBLE_EQ(s->values[0], 2.5);
  EXPECT_DOUBLE_EQ(s->values[1], 7.25);
  EXPECT_TRUE(s->rates.empty());
}

TEST(TimeseriesSamplerTest, RetentionEvictsOldestPoints) {
  Registry::Get().GetCounter("tstest_retention_total").Inc();
  TimeseriesOptions options;
  options.retention = 2;
  TimeseriesSampler sampler(options);
  sampler.SampleOnce(0.0);
  sampler.SampleOnce(1.0);
  sampler.SampleOnce(2.0);

  const SamplerSnapshot snapshot = sampler.Snapshot();
  EXPECT_EQ(snapshot.ticks, 3);
  EXPECT_EQ(snapshot.retention, 2);
  const MetricSeries* s =
      FindSeries(snapshot, "tstest_retention_total");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->times.size(), 2u);
  EXPECT_DOUBLE_EQ(s->times[0], 1.0);
  EXPECT_DOUBLE_EQ(s->times[1], 2.0);
  ASSERT_EQ(s->rates.size(), 1u);
}

TEST(TimeseriesSamplerTest, HistogramWindowQuantilesComeFromDeltas) {
  Histogram& h = Registry::Get().GetHistogram(
      "tstest_hist", HistogramLayout::PowerOfTwo());
  TimeseriesOptions options;
  options.retention = 8;
  TimeseriesSampler sampler(options);

  // Samples recorded BEFORE the first tick fall outside the window
  // (newest-minus-oldest bucket deltas), so quantiles reflect only the
  // 100 in-window observations of 5.0 (pow2 bucket [4, 8)).
  for (int i = 0; i < 40; ++i) h.Observe(1000.0);
  sampler.SampleOnce(0.0);
  for (int i = 0; i < 100; ++i) h.Observe(5.0);
  sampler.SampleOnce(1.0);

  const SamplerSnapshot snapshot = sampler.Snapshot();
  const MetricSeries* s = FindSeries(snapshot, "tstest_hist");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->type, MetricType::kHistogram);
  ASSERT_TRUE(s->has_quantiles);
  EXPECT_EQ(s->window_count, 100);
  // Linear interpolation inside [4, 8): p50 = 4 + 0.5 * 4 = 6.
  EXPECT_NEAR(s->p50, 6.0, 1e-9);
  EXPECT_NEAR(s->p99, 7.96, 1e-9);
  EXPECT_NEAR(s->p999, 7.996, 1e-9);
  // Values track the histogram's cumulative count; the rate covers the
  // 100 in-window samples over 1 second.
  ASSERT_EQ(s->rates.size(), 1u);
  EXPECT_DOUBLE_EQ(s->rates[0], 100.0);
}

TEST(TimeseriesSamplerTest, PreSampleHookRunsBeforeEveryTick) {
  TimeseriesOptions options;
  options.retention = 4;
  TimeseriesSampler sampler(options);
  int calls = 0;
  sampler.set_pre_sample_hook([&calls] { ++calls; });
  sampler.SampleOnce(0.0);
  sampler.SampleOnce(1.0);
  EXPECT_EQ(calls, 2);
}

TEST(TimeseriesSamplerTest, BackgroundThreadTicksAndStops) {
  Registry::Get().GetCounter("tstest_thread_total").Inc();
  TimeseriesOptions options;
  options.period_seconds = 0.01;
  options.retention = 64;
  TimeseriesSampler sampler(options);
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  sampler.Stop();
  const int64_t ticks = sampler.Snapshot().ticks;
  EXPECT_GE(ticks, 1);
  // Stop is idempotent and final: no ticks after it.
  sampler.Stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(sampler.Snapshot().ticks, ticks);
}

}  // namespace
}  // namespace wmlp::telemetry
