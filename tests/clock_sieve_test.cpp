#include <gtest/gtest.h>

#include "baselines/clock.h"
#include "baselines/lru.h"
#include "baselines/sieve.h"
#include "baselines/two_q.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

std::vector<PageId> Evictions(const std::vector<CacheEvent>& log) {
  std::vector<PageId> out;
  for (const auto& ev : log) {
    if (ev.kind == CacheEvent::Kind::kEvict) out.push_back(ev.page);
  }
  return out;
}

TEST(Clock, SecondChanceSparesReferencedPage) {
  Instance inst = Instance::Uniform(4, 2);
  // Insert 0, 1; touch 0 again (reference bit set); fetch 2: the hand sees
  // 0 (referenced -> spared), then 1 (victim).
  Trace t{inst, {{0, 1}, {1, 1}, {0, 1}, {2, 1}}};
  ClockPolicy p;
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, p, opts);
  const auto ev = Evictions(log);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0], 1);
}

TEST(Clock, DegeneratesToFifoWithoutRehits) {
  Instance inst = Instance::Uniform(6, 3);
  Trace t{inst, {{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}}};
  ClockPolicy p;
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, p, opts);
  const auto ev = Evictions(log);
  ASSERT_EQ(ev.size(), 2u);
  // All reference bits are set on insertion... CLOCK sets the bit on
  // access; with no rehits the sweep clears 0's bit then 1's then 2's and
  // wraps to evict 0, then 1.
  EXPECT_EQ(ev[0], 0);
  EXPECT_EQ(ev[1], 1);
}

TEST(Sieve, EvictsUnvisitedFromTail) {
  Instance inst = Instance::Uniform(4, 2);
  // Insert 0, 1 (both unvisited); fetch 2: hand starts at tail (0),
  // 0 unvisited -> evicted.
  Trace t{inst, {{0, 1}, {1, 1}, {2, 1}}};
  SievePolicy p;
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, p, opts);
  const auto ev = Evictions(log);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0], 0);
}

TEST(Sieve, VisitedPageSurvivesOneSweep) {
  Instance inst = Instance::Uniform(4, 2);
  // 0, 1, re-touch 0 (visited); fetch 2: hand at tail sees 0 visited ->
  // clears and moves on; 1 unvisited -> evicted.
  Trace t{inst, {{0, 1}, {1, 1}, {0, 1}, {2, 1}}};
  SievePolicy p;
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, p, opts);
  const auto ev = Evictions(log);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0], 1);
}

struct SweepCase {
  int32_t n, k, ell;
  uint64_t seed;
};

class NewBaselineSweep
    : public ::testing::TestWithParam<std::tuple<int, SweepCase>> {};

TEST_P(NewBaselineSweep, FeasibleOnRandomTraces) {
  const auto [which, c] = GetParam();
  Instance inst(c.n, c.k, c.ell,
                MakeWeights(c.n, c.ell, WeightModel::kLogUniform, 8.0,
                            c.seed));
  const Trace t = GenZipf(inst, 1500, 0.8,
                          c.ell == 1 ? LevelMix::AllLowest(1)
                                     : LevelMix::UniformMix(c.ell),
                          c.seed + 1);
  PolicyPtr p;
  if (which == 0) {
    p = std::make_unique<ClockPolicy>();
  } else {
    p = std::make_unique<SievePolicy>();
  }
  const SimResult res = Simulate(t, *p);  // strict sim asserts feasibility
  EXPECT_GT(res.misses, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NewBaselineSweep,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(SweepCase{8, 2, 1, 1},
                                         SweepCase{32, 8, 1, 2},
                                         SweepCase{16, 4, 2, 3},
                                         SweepCase{24, 6, 3, 4},
                                         SweepCase{3, 2, 1, 5},
                                         SweepCase{64, 16, 2, 6})),
    [](const auto& suite_info) {
      const int which = std::get<0>(suite_info.param);
      const SweepCase& c = std::get<1>(suite_info.param);
      return std::string(which == 0 ? "clock" : "sieve") + "_n" +
             std::to_string(c.n) + "k" + std::to_string(c.k) + "ell" +
             std::to_string(c.ell);
    });

TEST(TwoQ, FreshPagesEnterProbationFifo) {
  Instance inst = Instance::Uniform(8, 4);  // A1in target = 1
  // Fill: 0,1,2,3 (all probation-fresh, A1in holds all until pressure).
  // Fetch 4: probation over target -> evict oldest probation page 0.
  Trace t{inst, {{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}}};
  TwoQPolicy p;
  std::vector<CacheEvent> log;
  SimOptions opts;
  opts.event_log = &log;
  Simulate(t, p, opts);
  std::vector<PageId> evicted;
  for (const auto& ev : log) {
    if (ev.kind == CacheEvent::Kind::kEvict) evicted.push_back(ev.page);
  }
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 0);
}

TEST(TwoQ, GhostReReferencePromotesToMain) {
  Instance inst = Instance::Uniform(8, 2);  // A1in target = 1, ghosts = 1
  // 0 enters probation; 1 evicts it (ghost); re-referencing 0 promotes it
  // into Am, after which a scan (2, 3) must evict probation pages, not 0.
  Trace t{inst, {{0, 1}, {1, 1}, {0, 1}, {2, 1}, {3, 1}, {0, 1}}};
  TwoQPolicy p;
  const SimResult res = Simulate(t, p);
  // Final request of 0 is a hit iff 0 survived the scan in Am.
  EXPECT_GE(res.hits, 1);
}

TEST(TwoQ, ScanResistantVsLru) {
  // Hot zipf core + long scans: 2Q's probation queue keeps scans from
  // flushing the hot set, unlike LRU.
  Instance inst = Instance::Uniform(256, 16);
  const Trace t = GenScanMix(inst, 20000, 1.1, 64, 0.03,
                             LevelMix::AllLowest(1), 21);
  LruPolicy lru;
  TwoQPolicy two_q;
  const double lru_cost = Simulate(t, lru).eviction_cost;
  const double two_q_cost = Simulate(t, two_q).eviction_cost;
  EXPECT_LT(two_q_cost, lru_cost);
}

TEST(TwoQ, FeasibleOnMultiLevel) {
  Instance inst(24, 6, 3,
                MakeWeights(24, 3, WeightModel::kGeometricLevels, 8.0, 22));
  const Trace t = GenZipf(inst, 2000, 0.8, LevelMix::UniformMix(3), 23);
  TwoQPolicy p;
  const SimResult res = Simulate(t, p);
  EXPECT_GT(res.hits, 0);
}

TEST(TwoQ, CacheSizeOne) {
  Instance inst = Instance::Uniform(4, 1);
  const Trace t = GenLoop(inst, 60, 4, LevelMix::AllLowest(1));
  TwoQPolicy p;
  const SimResult res = Simulate(t, p);
  EXPECT_EQ(res.hits, 0);
}

TEST(Sieve, CompetitiveWithLruOnZipf) {
  // SIEVE's selling point: at least LRU-grade on skewed traffic.
  Instance inst = Instance::Uniform(128, 16);
  const Trace t = GenZipf(inst, 20000, 1.0, LevelMix::AllLowest(1), 9);
  LruPolicy lru;
  SievePolicy sieve;
  const double lru_cost = Simulate(t, lru).eviction_cost;
  const double sieve_cost = Simulate(t, sieve).eviction_cost;
  EXPECT_LT(sieve_cost, 1.15 * lru_cost);
}

TEST(Clock, ApproximatesLruOnZipf) {
  Instance inst = Instance::Uniform(128, 16);
  const Trace t = GenZipf(inst, 20000, 1.0, LevelMix::AllLowest(1), 10);
  LruPolicy lru;
  ClockPolicy clock;
  const double lru_cost = Simulate(t, lru).eviction_cost;
  const double clock_cost = Simulate(t, clock).eviction_cost;
  EXPECT_LT(clock_cost, 1.25 * lru_cost);
}

}  // namespace
}  // namespace wmlp
