#include <gtest/gtest.h>

#include <algorithm>

#include "engine/engine.h"
#include "engine/step_observers.h"
#include "registry/policy_registry.h"
#include "sim/simulator.h"
#include "trace/generators.h"

namespace wmlp {
namespace {

class RegistrySuite : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistrySuite, ConstructsAndRuns) {
  PolicyPtr p = MakePolicyByName(GetParam(), 3);
  ASSERT_NE(p, nullptr) << GetParam();
  Instance inst = Instance::Uniform(16, 4);
  const Trace t = GenZipf(inst, 300, 0.8, LevelMix::AllLowest(1), 1);
  const SimResult res = Simulate(t, *p);
  EXPECT_GT(res.misses, 0);
}

TEST_P(RegistrySuite, ServesAMultiLevelSmokeTraceThroughTheEngine) {
  PolicyPtr p = MakePolicyByName(GetParam(), 3);
  ASSERT_NE(p, nullptr) << GetParam();
  // marking is single-level-only (CHECKs ell == 1 at Attach).
  const int32_t ell = GetParam() == "marking" ? 1 : 2;
  Instance inst(12, 4, ell,
                MakeWeights(12, ell, WeightModel::kGeometricLevels, 4.0, 1));
  TraceSource source(GenZipf(inst, 200, 0.7, LevelMix::UniformMix(ell), 2));
  CostMeter meter;
  EngineOptions opts;
  opts.observer = &meter;
  Engine engine(source, *p, opts);
  const SimResult res = engine.Run();
  EXPECT_EQ(res.hits + res.misses, 200);
  EXPECT_EQ(meter.steps(), 200);
  EXPECT_GT(res.misses, 0);
}

INSTANTIATE_TEST_SUITE_P(AllNames, RegistrySuite,
                         ::testing::ValuesIn(KnownPolicyNames()),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(MakePolicyByName("does-not-exist", 1), nullptr);
  EXPECT_EQ(MakePolicyByName("", 1), nullptr);
}

TEST(Registry, RandomizedAlias) {
  EXPECT_NE(MakePolicyByName("fractional-rounded", 1), nullptr);
}

TEST(Registry, ParameterizedRandomized) {
  PolicyPtr p = MakePolicyByName("randomized:beta=2.0,eta=0.1", 1);
  ASSERT_NE(p, nullptr);
  Instance inst = Instance::Uniform(8, 4);
  Trace t{inst, {{0, 1}, {1, 1}, {2, 1}}};
  const SimResult res = Simulate(t, *p);
  EXPECT_EQ(res.misses, 3);
}

TEST(Registry, ParameterizedIgnoresUnknownKeys) {
  PolicyPtr p = MakePolicyByName("randomized:bogus=1,beta=3", 1);
  ASSERT_NE(p, nullptr);
}

TEST(Registry, KnownNamesRoundTripThroughMakePolicyByName) {
  for (const auto& name : KnownPolicyNames()) {
    PolicyPtr p = MakePolicyByName(name, 7);
    ASSERT_NE(p, nullptr) << name;
    // A constructed policy serves a smoke trace without violating the
    // engine's feasibility checks (strict mode aborts otherwise).
    Instance inst = Instance::Uniform(8, 3);
    const Trace t = GenZipf(inst, 60, 0.5, LevelMix::AllLowest(1), 4);
    const SimResult res = Simulate(t, *p);
    EXPECT_EQ(res.hits + res.misses, 60) << name;
  }
}

TEST(Registry, LinearEngineVariantIsRegistered) {
  PolicyPtr p = MakePolicyByName("fractional-rounded-linear", 1);
  ASSERT_NE(p, nullptr);
  const auto names = KnownPolicyNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "fractional-rounded-linear"),
            names.end());
  // The previously unreachable baselines are reachable by name too.
  for (const auto& name : {"clock", "sieve", "2q"}) {
    EXPECT_NE(MakePolicyByName(name, 1), nullptr) << name;
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

}  // namespace
}  // namespace wmlp
