#include <gtest/gtest.h>

#include "registry/policy_registry.h"
#include "sim/simulator.h"
#include "trace/generators.h"

namespace wmlp {
namespace {

class RegistrySuite : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistrySuite, ConstructsAndRuns) {
  PolicyPtr p = MakePolicyByName(GetParam(), 3);
  ASSERT_NE(p, nullptr) << GetParam();
  Instance inst = Instance::Uniform(16, 4);
  const Trace t = GenZipf(inst, 300, 0.8, LevelMix::AllLowest(1), 1);
  const SimResult res = Simulate(t, *p);
  EXPECT_GT(res.misses, 0);
}

INSTANTIATE_TEST_SUITE_P(AllNames, RegistrySuite,
                         ::testing::ValuesIn(KnownPolicyNames()),
                         [](const auto& info) { return info.param; });

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(MakePolicyByName("does-not-exist", 1), nullptr);
  EXPECT_EQ(MakePolicyByName("", 1), nullptr);
}

TEST(Registry, RandomizedAlias) {
  EXPECT_NE(MakePolicyByName("fractional-rounded", 1), nullptr);
}

TEST(Registry, ParameterizedRandomized) {
  PolicyPtr p = MakePolicyByName("randomized:beta=2.0,eta=0.1", 1);
  ASSERT_NE(p, nullptr);
  Instance inst = Instance::Uniform(8, 4);
  Trace t{inst, {{0, 1}, {1, 1}, {2, 1}}};
  const SimResult res = Simulate(t, *p);
  EXPECT_EQ(res.misses, 3);
}

TEST(Registry, ParameterizedIgnoresUnknownKeys) {
  PolicyPtr p = MakePolicyByName("randomized:bogus=1,beta=3", 1);
  ASSERT_NE(p, nullptr);
}

TEST(Registry, KnownNamesAreAllConstructible) {
  for (const auto& name : KnownPolicyNames()) {
    EXPECT_NE(MakePolicyByName(name, 7), nullptr) << name;
  }
}

}  // namespace
}  // namespace wmlp
