// Executes the Section 4.2 potential-function proof step by step:
//
//   Phi(t) = 2 sum_q sum_j w(q,j) v(q,j,t) ln((1+eta)/(u(q,j,t)+eta))
//
// where u is the online fractional state and v the offline optimum's
// integral prefix indicators (from an actual OPT schedule reconstructed by
// the DP). The analysis claims, per time step,
//
//   Delta(ON) + Delta(Phi) <= c * Delta(OFF),   c = 4 ln(1 + 1/eta),
//
// with Delta(ON) the online y-movement cost and Delta(OFF) the offline
// eviction cost. Verifying the inequality on every step of random
// instances is a machine check of Lemmas 4.2-4.4.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fractional.h"
#include "offline/multilevel_dp.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

// v(q, j, t): 1 iff OFF's cached copy of q (if any) sits at a level > j
// (i.e. the prefix 1..j is missing). Absent page: all 1.
int32_t OffV(uint64_t state, PageId q, Level j, int32_t ell) {
  const Level lvl = OptimalSchedule::LevelOf(state, q, ell);
  if (lvl == 0) return 1;
  return j < lvl ? 1 : 0;
}

double Potential(const Instance& inst, const FractionalMlp& frac,
                 uint64_t off_state, double eta) {
  double phi = 0.0;
  for (PageId q = 0; q < inst.num_pages(); ++q) {
    for (Level j = 1; j <= inst.num_levels(); ++j) {
      if (OffV(off_state, q, j, inst.num_levels()) == 0) continue;
      phi += 2.0 * inst.weight(q, j) *
             std::log((1.0 + eta) / (frac.U(q, j) + eta));
    }
  }
  return phi;
}

double OffStepCost(const Instance& inst, uint64_t from, uint64_t to) {
  double c = 0.0;
  for (PageId q = 0; q < inst.num_pages(); ++q) {
    const Level d0 = OptimalSchedule::LevelOf(from, q, inst.num_levels());
    const Level d1 = OptimalSchedule::LevelOf(to, q, inst.num_levels());
    if (d0 != 0 && d1 != d0) c += inst.weight(q, d0);
  }
  return c;
}

void VerifyPotentialInequality(const Trace& trace) {
  const Instance& inst = trace.instance;
  const OptimalSchedule opt = MultiLevelOptimalSchedule(trace);
  ASSERT_EQ(opt.states.size(), trace.requests.size());

  FractionalMlp frac;
  frac.Attach(inst);
  const double eta = 1.0 / inst.cache_size();
  const double c = 4.0 * std::log(1.0 + 1.0 / eta);

  uint64_t off_prev = 0;  // empty cache
  double phi_prev = 0.0;  // u = v-weighted ln(1) = 0
  Cost on_prev = 0.0;
  for (size_t t = 0; t < trace.requests.size(); ++t) {
    frac.Serve(static_cast<Time>(t), trace.requests[t]);
    const uint64_t off_now = opt.states[t];
    const double phi_now = Potential(inst, frac, off_now, eta);
    const double d_on = frac.movement_cost() - on_prev;
    const double d_off = OffStepCost(inst, off_prev, off_now);
    EXPECT_LE(d_on + (phi_now - phi_prev), c * d_off + 1e-6)
        << "step " << t << ": dOn=" << d_on
        << " dPhi=" << (phi_now - phi_prev) << " c*dOff=" << c * d_off;
    off_prev = off_now;
    phi_prev = phi_now;
    on_prev = frac.movement_cost();
  }
  // Telescoping consequence: total online cost <= c * OPT + Phi(0).
  EXPECT_LE(frac.movement_cost(), c * opt.cost + 1e-6);
}

TEST(Potential, HoldsStepwiseSingleLevelUniform) {
  Instance inst = Instance::Uniform(5, 2);
  const Trace t = GenZipf(inst, 80, 0.6, LevelMix::AllLowest(1), 1);
  VerifyPotentialInequality(t);
}

TEST(Potential, HoldsStepwiseSingleLevelWeighted) {
  Rng seeds(11);
  for (int trial = 0; trial < 4; ++trial) {
    Instance inst(5, 2, 1,
                  MakeWeights(5, 1, WeightModel::kLogUniform, 8.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 60, 0.6, LevelMix::AllLowest(1),
                            seeds.Next());
    VerifyPotentialInequality(t);
  }
}

TEST(Potential, HoldsStepwiseTwoLevels) {
  Rng seeds(12);
  for (int trial = 0; trial < 4; ++trial) {
    Instance inst(4, 2, 2,
                  MakeWeights(4, 2, WeightModel::kGeometricLevels, 4.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 50, 0.6, LevelMix::UniformMix(2),
                            seeds.Next());
    VerifyPotentialInequality(t);
  }
}

TEST(Potential, HoldsStepwiseThreeLevels) {
  Instance inst(3, 2, 3,
                MakeWeights(3, 3, WeightModel::kGeometricLevels, 8.0, 21));
  const Trace t = GenZipf(inst, 40, 0.6, LevelMix::UniformMix(3), 22);
  VerifyPotentialInequality(t);
}

TEST(Potential, HoldsOnAdversarialLoop) {
  Instance inst = Instance::Uniform(4, 3);
  const Trace t = GenLoop(inst, 60, 4, LevelMix::AllLowest(1));
  VerifyPotentialInequality(t);
}

TEST(OptimalSchedule, MatchesCostAndIsFeasible) {
  Rng seeds(31);
  for (int trial = 0; trial < 5; ++trial) {
    Instance inst(5, 2, 2,
                  MakeWeights(5, 2, WeightModel::kGeometricLevels, 4.0,
                              seeds.Next()));
    const Trace t = GenZipf(inst, 40, 0.6, LevelMix::UniformMix(2),
                            seeds.Next());
    const OptimalSchedule sched = MultiLevelOptimalSchedule(t);
    EXPECT_NEAR(sched.cost, MultiLevelOptimal(t), 1e-9);
    // Every state serves its request and respects capacity.
    for (size_t i = 0; i < t.requests.size(); ++i) {
      const Request& r = t.requests[i];
      const Level lvl = OptimalSchedule::LevelOf(sched.states[i], r.page,
                                                 inst.num_levels());
      EXPECT_GE(lvl, 1) << "step " << i;
      EXPECT_LE(lvl, r.level) << "step " << i;
      int32_t occ = 0;
      for (PageId q = 0; q < inst.num_pages(); ++q) {
        if (OptimalSchedule::LevelOf(sched.states[i], q,
                                     inst.num_levels()) != 0) {
          ++occ;
        }
      }
      EXPECT_LE(occ, inst.cache_size()) << "step " << i;
    }
    // Replaying the transitions reproduces the cost.
    Cost replay = 0.0;
    uint64_t prev = 0;
    for (uint64_t s : sched.states) {
      replay += [&] {
        double c = 0.0;
        for (PageId q = 0; q < inst.num_pages(); ++q) {
          const Level d0 =
              OptimalSchedule::LevelOf(prev, q, inst.num_levels());
          const Level d1 =
              OptimalSchedule::LevelOf(s, q, inst.num_levels());
          if (d0 != 0 && d1 != d0) c += inst.weight(q, d0);
        }
        return c;
      }();
      prev = s;
    }
    EXPECT_NEAR(replay, sched.cost, 1e-9);
  }
}

}  // namespace
}  // namespace wmlp
