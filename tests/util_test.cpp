#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bitkey_index.h"
#include "util/dheap.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/zipf.h"

namespace wmlp {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedUniform) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(DeriveSeed, ChildStreamsIndependent) {
  const uint64_t s1 = DeriveSeed(123, 0);
  const uint64_t s2 = DeriveSeed(123, 1);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(s1, DeriveSeed(123, 0));  // deterministic
}

TEST(Zipf, UniformWhenAlphaZero) {
  ZipfSampler z(4, 0.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(z.Probability(i), 0.25, 1e-12);
  }
}

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfSampler z(100, 0.9);
  double sum = 0.0;
  for (int i = 0; i < 100; ++i) sum += z.Probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, ProbabilitiesMonotone) {
  ZipfSampler z(50, 1.2);
  for (int i = 1; i < 50; ++i) {
    EXPECT_LE(z.Probability(i), z.Probability(i - 1) + 1e-15);
  }
}

TEST(Zipf, ExactRatios) {
  ZipfSampler z(3, 1.0);
  // Weights 1, 1/2, 1/3.
  EXPECT_NEAR(z.Probability(0) / z.Probability(1), 2.0, 1e-9);
  EXPECT_NEAR(z.Probability(0) / z.Probability(2), 3.0, 1e-9);
}

TEST(Zipf, EmpiricalMatchesExact) {
  ZipfSampler z(8, 0.8);
  Rng rng(21);
  std::vector<int> counts(8, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(z.Sample(rng))];
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(i)]) / n,
                z.Probability(i), 0.01);
  }
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(x);
  EXPECT_EQ(rs.count(), 8);
  EXPECT_NEAR(rs.mean(), 5.0, 1e-12);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat a, b, all;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10.0;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.Add(3.5);
  EXPECT_EQ(rs.mean(), 3.5);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.ci95_halfwidth(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(Percentile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(Percentile(xs, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(Percentile(xs, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(Percentile(xs, 0.25), 2.0, 1e-12);
}

TEST(Stats, GeoMean) {
  std::vector<double> xs = {1.0, 4.0, 16.0};
  EXPECT_NEAR(GeoMean(xs), 4.0, 1e-9);
}

TEST(Stats, MeanAndStdDev) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_NEAR(Mean(xs), 2.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), 1.0, 1e-12);
}

// --- DHeap ---------------------------------------------------------------

struct IntLess {
  bool operator()(int a, int b) const { return a < b; }
};

TEST(DHeap, PopsInSortedOrder) {
  Rng rng(3);
  DHeap<int, IntLess> heap;
  std::vector<int> values;
  for (int i = 0; i < 1000; ++i) {
    const int v = static_cast<int>(rng.NextBounded(500));
    values.push_back(v);
    heap.push(v);
  }
  std::sort(values.begin(), values.end());
  for (const int expected : values) {
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap.top(), expected);
    heap.pop();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(DHeap, HeapifyMatchesIncrementalPushes) {
  Rng rng(9);
  DHeap<int, IntLess> pushed, bulk;
  for (int i = 0; i < 500; ++i) {
    const int v = static_cast<int>(rng.NextBounded(1000));
    pushed.push(v);
    bulk.push_unordered(v);
  }
  bulk.heapify();
  while (!pushed.empty()) {
    ASSERT_FALSE(bulk.empty());
    EXPECT_EQ(bulk.top(), pushed.top());
    bulk.pop();
    pushed.pop();
  }
  EXPECT_TRUE(bulk.empty());
}

TEST(DHeap, ClearKeepsArenaCapacityAndReusesIt) {
  DHeap<int, IntLess> heap;
  for (int i = 0; i < 100; ++i) heap.push(100 - i);
  const size_t cap = heap.capacity();
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.capacity(), cap);
  heap.push(5);
  heap.push(1);
  EXPECT_EQ(heap.top(), 1);
}

TEST(DHeap, EntriesFilterAndTruncateRebuild) {
  DHeap<int, IntLess> heap;
  for (int i = 0; i < 50; ++i) heap.push(i);
  // Drop the odd entries in place, as waterfill's compaction does.
  std::span<int> entries = heap.entries();
  auto last = std::remove_if(entries.begin(), entries.end(),
                             [](int v) { return v % 2 != 0; });
  heap.truncate(static_cast<size_t>(last - entries.begin()));
  heap.heapify();
  for (int expected = 0; expected < 50; expected += 2) {
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap.top(), expected);
    heap.pop();
  }
  EXPECT_TRUE(heap.empty());
}

// --- BitKeyIndex ---------------------------------------------------------

TEST(BitKeyIndex, InsertFindAndGrow) {
  BitKeyIndex index;
  // Far past the initial 16 slots: forces several grows.
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(index.Find(i * 0x9e3779b9ULL), -1);
    index.Insert(i * 0x9e3779b9ULL, static_cast<int32_t>(i));
  }
  EXPECT_EQ(index.size(), 1000);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(index.Find(i * 0x9e3779b9ULL), static_cast<int32_t>(i));
  }
  index.Reset();
  EXPECT_EQ(index.size(), 0);
  EXPECT_EQ(index.Find(0x9e3779b9ULL), -1);
}

TEST(BitKeyIndex, AdjacentDoubleBitPatternsStayDistinct) {
  // The motivating case: doubles one ulp apart collide under any
  // truncating key (cast to float, fixed-point scale) but must map to
  // distinct groups. Keying on the bit pattern makes collision impossible.
  BitKeyIndex index;
  double w = 2.0;
  for (int32_t i = 0; i < 8; ++i) {
    const uint64_t key = std::bit_cast<uint64_t>(w);
    EXPECT_EQ(index.Find(key), -1) << "ulp " << i;
    index.Insert(key, i);
    w = std::nextafter(w, 3.0);
  }
  w = 2.0;
  for (int32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(index.Find(std::bit_cast<uint64_t>(w)), i);
    EXPECT_EQ(static_cast<double>(static_cast<float>(w)), 2.0)
        << "weights must collide under float truncation for this test "
           "to exercise anything";
    w = std::nextafter(w, 3.0);
  }
}

TEST(BitKeyIndex, SignedZerosAreDistinctKeys) {
  BitKeyIndex index;
  index.Insert(std::bit_cast<uint64_t>(0.0), 0);
  EXPECT_EQ(index.Find(std::bit_cast<uint64_t>(-0.0)), -1);
  index.Insert(std::bit_cast<uint64_t>(-0.0), 1);
  EXPECT_EQ(index.Find(std::bit_cast<uint64_t>(0.0)), 0);
  EXPECT_EQ(index.Find(std::bit_cast<uint64_t>(-0.0)), 1);
}

// --- RingBuffer ----------------------------------------------------------

TEST(RingBuffer, FifoAcrossWrapAndRegrow) {
  RingBuffer<int> ring;
  int next_in = 0, next_out = 0;
  Rng rng(17);
  // Interleaved bulk appends and drains force wraps and several regrows;
  // contents must stay an exact FIFO throughout.
  for (int round = 0; round < 200; ++round) {
    std::vector<int> batch(rng.NextBounded(37));
    for (int& v : batch) v = next_in++;
    ring.append(std::span<const int>(batch.data(), batch.size()));
    const size_t drain = rng.NextBounded(ring.size() + 1);
    for (size_t i = 0; i < drain; ++i) {
      ASSERT_EQ(ring.front(), next_out++);
      ring.pop_front();
    }
    EXPECT_EQ(ring.size(), static_cast<size_t>(next_in - next_out));
  }
  while (!ring.empty()) {
    ASSERT_EQ(ring.front(), next_out++);
    ring.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingBuffer, BackAndPushBack) {
  RingBuffer<int> ring;
  for (int i = 0; i < 50; ++i) {
    ring.push_back(i);
    EXPECT_EQ(ring.back(), i);
    EXPECT_EQ(ring.front(), 0);
  }
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push_back(7);
  EXPECT_EQ(ring.front(), 7);
  EXPECT_EQ(ring.back(), 7);
}

TEST(RingBuffer, ReserveRoundsUpAndAppendDoesNotReallocate) {
  RingBuffer<int> ring;
  ring.reserve(100);  // rounds up to 128
  std::vector<int> batch(100);
  for (int i = 0; i < 100; ++i) batch[i] = i;
  // Offset the head so the append wraps.
  ring.append(std::span<const int>(batch.data(), 60));
  for (int i = 0; i < 40; ++i) ring.pop_front();
  ring.append(std::span<const int>(batch.data() + 60, 40));
  const int* stable = &ring.front();
  ring.append(std::span<const int>(batch.data(), 68));  // fills to 128
  EXPECT_EQ(&ring.front(), stable);  // no regrow happened
  for (int i = 40; i < 60; ++i) {
    EXPECT_EQ(ring.front(), i);
    ring.pop_front();
  }
}

}  // namespace
}  // namespace wmlp
