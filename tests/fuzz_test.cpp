// Differential fuzzing: random instance/workload configurations pushed
// through the whole stack with every invariant checker armed (strict
// simulator + paranoid rounding), cross-checked against exact optima
// where tractable. Any regression in any module tends to surface here
// first.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/landlord.h"
#include "baselines/lru.h"
#include "core/randomized.h"
#include "core/rounding_multilevel.h"
#include "core/waterfill.h"
#include "offline/bounds.h"
#include "offline/multilevel_dp.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace wmlp {
namespace {

struct FuzzConfig {
  Instance instance;
  Trace trace;
};

FuzzConfig RandomConfig(Rng& rng) {
  const int32_t n = 3 + static_cast<int32_t>(rng.NextBounded(14));
  const int32_t k =
      1 + static_cast<int32_t>(rng.NextBounded(
              static_cast<uint64_t>(std::max(1, n - 1))));
  const int32_t ell = 1 + static_cast<int32_t>(rng.NextBounded(4));
  const WeightModel model = static_cast<WeightModel>(rng.NextBounded(4));
  const double ratio = 1.0 + rng.NextDouble() * 30.0;
  Instance inst(n, k, ell, MakeWeights(n, ell, model, ratio, rng.Next()));

  const int64_t T = 30 + static_cast<int64_t>(rng.NextBounded(220));
  const double alpha = rng.NextDouble() * 1.2;
  LevelMix mix = ell == 1 ? LevelMix::AllLowest(1)
                          : LevelMix::UniformMix(ell);
  if (ell > 1 && rng.NextBernoulli(0.5)) {
    mix = LevelMix::Geometric(ell, 0.3 + rng.NextDouble() * 0.6,
                              rng.NextBernoulli(0.5));
  }
  Trace trace{inst, {}};
  switch (rng.NextBounded(4)) {
    case 0:
      trace = GenZipf(inst, T, alpha, mix, rng.Next());
      break;
    case 1:
      trace = GenLoop(inst, T,
                      1 + static_cast<int32_t>(rng.NextBounded(
                              static_cast<uint64_t>(n))),
                      mix);
      break;
    case 2:
      trace = GenPhases(inst, T,
                        1 + static_cast<int32_t>(rng.NextBounded(
                                static_cast<uint64_t>(n))),
                        10 + static_cast<int64_t>(rng.NextBounded(50)),
                        alpha, mix, rng.Next());
      break;
    default:
      trace = GenMarkov(inst, T, rng.NextDouble(), 4, alpha, mix,
                        rng.Next());
      break;
  }
  return FuzzConfig{std::move(inst), std::move(trace)};
}

TEST(Fuzz, FullStackInvariantSweep) {
  Rng rng(0xF0CCAC1AULL);
  for (int round = 0; round < 30; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const FuzzConfig cfg = RandomConfig(rng);
    const Instance& inst = cfg.trace.instance;

    // Deterministic policies under the strict simulator.
    LruPolicy lru;
    LandlordPolicy landlord;
    WaterfillPolicy waterfill;
    const Cost lru_cost = Simulate(cfg.trace, lru).eviction_cost;
    const Cost ll_cost = Simulate(cfg.trace, landlord).eviction_cost;
    const Cost wf_cost = Simulate(cfg.trace, waterfill).eviction_cost;

    // Randomized with the paranoid multi-level checker.
    MultiLevelRoundingOptions ropts;
    ropts.paranoid = true;
    ropts.beta = rng.NextBernoulli(0.5) ? 1.0 + rng.NextDouble() * 8.0 : 0.0;
    RandomizedOptions stack_opts;
    if (rng.NextBernoulli(0.3)) {
      stack_opts.engine = FractionalEngine::kLinear;
    }
    if (rng.NextBernoulli(0.3)) stack_opts.delta = -1.0;  // no grid
    RoundedMultiLevel randomized(MakeFractionalStack(stack_opts),
                                 rng.Next(), ropts);
    const Cost rnd_cost = Simulate(cfg.trace, randomized).eviction_cost;

    // Exact optimum when tractable: nothing may beat it.
    const double states = std::pow(inst.num_levels() + 1.0,
                                   static_cast<double>(inst.num_pages()));
    if (states <= 60000.0) {
      const Cost opt = MultiLevelOptimal(cfg.trace);
      EXPECT_GE(lru_cost, opt - 1e-6);
      EXPECT_GE(ll_cost, opt - 1e-6);
      EXPECT_GE(wf_cost, opt - 1e-6);
      EXPECT_GE(rnd_cost, opt - 1e-6);
      // And the bound sandwich must contain it.
      const OfflineBounds b = ComputeOfflineBounds(cfg.trace);
      EXPECT_LE(b.lower, opt + 1e-6);
      EXPECT_GE(b.upper, opt - 1e-6);
    } else {
      const OfflineBounds b = ComputeOfflineBounds(cfg.trace);
      EXPECT_GE(lru_cost, b.lower - 1e-6);
      EXPECT_GE(rnd_cost, b.lower - 1e-6);
    }
  }
}

TEST(Fuzz, ReplayAgreesWithDirectAcrossConfigs) {
  Rng rng(0xBEEF);
  for (int round = 0; round < 10; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const FuzzConfig cfg = RandomConfig(rng);
    const PolicyFactory factory = MakeReplayRandomizedFactory(cfg.trace);
    const uint64_t seed = rng.Next();
    PolicyPtr replayed = factory(seed);
    PolicyPtr direct = MakeRandomizedPolicy(seed);
    EXPECT_EQ(Simulate(cfg.trace, *replayed).eviction_cost,
              Simulate(cfg.trace, *direct).eviction_cost);
  }
}

}  // namespace
}  // namespace wmlp
