#include <gtest/gtest.h>

#include "baselines/lru.h"
#include "baselines/marking.h"
#include "harness/adversary_search.h"
#include "offline/weighted_opt.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace wmlp {
namespace {

TEST(AdversarySearch, RatioNeverDecreases) {
  Instance inst = Instance::Uniform(12, 4);
  AdversaryOptions opts;
  opts.trace_length = 120;
  opts.iterations = 60;
  opts.seed = 3;
  const AdversaryResult res = FindAdversarialTrace(
      inst, [](uint64_t) { return std::make_unique<LruPolicy>(); }, opts);
  EXPECT_GE(res.ratio, res.initial_ratio - 1e-12);
  EXPECT_GT(res.ratio, 1.0);
}

TEST(AdversarySearch, ResultTraceIsValidAndReproducesRatio) {
  Instance inst = Instance::Uniform(10, 4);
  AdversaryOptions opts;
  opts.trace_length = 100;
  opts.iterations = 40;
  opts.seed = 5;
  const AdversaryResult res = FindAdversarialTrace(
      inst, [](uint64_t) { return std::make_unique<LruPolicy>(); }, opts);
  EXPECT_TRUE(ValidateTrace(res.trace));
  const Cost opt = WeightedCachingOpt(res.trace);
  ASSERT_GT(opt, 0.0);
  LruPolicy lru;
  EXPECT_NEAR(Simulate(res.trace, lru).eviction_cost / opt, res.ratio,
              1e-9);
  EXPECT_NEAR(opt, res.opt, 1e-9);
}

TEST(AdversarySearch, LruPushedTowardK) {
  Instance inst = Instance::Uniform(10, 5);
  AdversaryOptions opts;
  opts.trace_length = 200;
  opts.iterations = 100;
  opts.seed = 7;
  const AdversaryResult res = FindAdversarialTrace(
      inst, [](uint64_t) { return std::make_unique<LruPolicy>(); }, opts);
  // The loop already yields ~k; search must keep it >= 60% of k.
  EXPECT_GT(res.ratio, 3.0);
}

TEST(AdversarySearch, RandomizedPolicyAveragedOverSeeds) {
  Instance inst = Instance::Uniform(9, 4);
  AdversaryOptions opts;
  opts.trace_length = 100;
  opts.iterations = 20;
  opts.policy_trials = 3;
  opts.seed = 9;
  const AdversaryResult res = FindAdversarialTrace(
      inst,
      [](uint64_t seed) { return std::make_unique<MarkingPolicy>(seed); },
      opts);
  EXPECT_GT(res.ratio, 1.0);
  // Marking's bound is Theta(log k): the search can't push it to k.
  EXPECT_LT(res.ratio, 4.0);
}

TEST(AdversarySearch, RejectsMultiLevel) {
  Instance inst(4, 2, 2, {{4.0, 1.0}, {4.0, 1.0}, {4.0, 1.0}, {4.0, 1.0}});
  EXPECT_DEATH(
      FindAdversarialTrace(
          inst, [](uint64_t) { return std::make_unique<LruPolicy>(); }, {}),
      "ell == 1");
}

}  // namespace
}  // namespace wmlp
