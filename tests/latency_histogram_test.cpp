// LatencyHistogram percentile-interpolation tests (satellite of the
// telemetry PR): exact values at bucket boundaries, the single-sample
// case, and post-Merge p50/p99 agreement with a sorted-vector oracle.
// Samples are injected through Record(), so no cycle counter is involved
// and every expectation is exact arithmetic on the documented
// linear-within-log2-bucket rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "engine/step_observers.h"

namespace wmlp {
namespace {

// The log2 bucket Record() files `v` under, mirroring the implementation's
// documented rule (v < 2 -> bucket 0; bucket b covers [2^b, 2^{b+1})).
int BucketOf(uint64_t v) {
  return v < 2 ? 0 : 63 - __builtin_clzll(v);
}

// Oracle: the smallest sorted value with rank >= q * n, matching the
// histogram's "target = q * count" walk.
uint64_t OracleQuantile(std::vector<uint64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const double target = q * static_cast<double>(samples.size());
  const size_t index =
      target <= 1.0
          ? 0
          : static_cast<size_t>(std::ceil(target)) - 1;
  return samples[std::min(index, samples.size() - 1)];
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean_cycles(), 0.0);
  EXPECT_EQ(h.max_cycles(), 0u);
}

TEST(LatencyHistogramTest, SingleSampleInterpolatesWithinItsBucket) {
  LatencyHistogram h;
  h.Record(5);  // bucket 2: [4, 8)
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.max_cycles(), 5u);
  EXPECT_DOUBLE_EQ(h.mean_cycles(), 5.0);
  // target = q * 1, one sample in [4, 8): Quantile(q) = 4 + q * 4.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 6.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 8.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(h.Quantile(-3.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(7.0), h.Quantile(1.0));
}

TEST(LatencyHistogramTest, ExactBucketBoundaryValues) {
  // A sample sitting exactly on a power of two is the lower edge of its
  // bucket, so Quantile(0) must return the value itself.
  for (const uint64_t v : {uint64_t{2}, uint64_t{8}, uint64_t{1} << 20,
                           uint64_t{1} << 40}) {
    LatencyHistogram h;
    h.Record(v);
    EXPECT_DOUBLE_EQ(h.Quantile(0.0), static_cast<double>(v)) << "v=" << v;
    EXPECT_DOUBLE_EQ(h.Quantile(1.0), static_cast<double>(2 * v));
  }
  // Sub-2 samples (0 and 1) all land in bucket 0, spanning [0, 2).
  LatencyHistogram small;
  small.Record(0);
  small.Record(1);
  EXPECT_DOUBLE_EQ(small.Quantile(1.0), 2.0);
  EXPECT_DOUBLE_EQ(small.Quantile(0.5), 1.0);
}

TEST(LatencyHistogramTest, EvenSplitAcrossTwoBucketsInterpolatesExactly) {
  LatencyHistogram h;
  // Four samples in bucket 2 ([4,8)), four in bucket 4 ([16,32)).
  for (int i = 0; i < 4; ++i) h.Record(4);
  for (int i = 0; i < 4; ++i) h.Record(16);
  // target = 0.5 * 8 = 4 lands exactly on bucket 2's cumulative edge:
  // frac = 4/4 = 1 -> its upper edge.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 8.0);
  // target = 0.25 * 8 = 2 -> halfway through bucket 2.
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 6.0);
  // target = 0.75 * 8 = 6 -> halfway through bucket 4.
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 24.0);
}

TEST(LatencyHistogramTest, MergeMatchesRecordingEverythingIntoOne) {
  // Deterministic LCG; spans several orders of magnitude like real cycle
  // counts.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return (state >> 33) % 1000000 + 1;
  };
  LatencyHistogram a, b, combined;
  std::vector<uint64_t> all;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = next();
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
    all.push_back(v);
  }
  LatencyHistogram merged;
  merged.Merge(a);
  merged.Merge(b);

  // Merging loses nothing the buckets had not already lost: identical
  // counts, identical quantiles at every probe.
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_EQ(merged.max_cycles(), combined.max_cycles());
  EXPECT_DOUBLE_EQ(merged.mean_cycles(), combined.mean_cycles());
  for (const double q : {0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }

  // p50/p99 agree with the sorted-vector oracle up to bucket resolution:
  // the interpolated value lies inside the oracle value's log2 bucket.
  for (const double q : {0.5, 0.99}) {
    const uint64_t oracle = OracleQuantile(all, q);
    const int bucket = BucketOf(oracle);
    const double lo = bucket == 0 ? 0.0 : std::ldexp(1.0, bucket);
    const double hi = std::ldexp(1.0, bucket + 1);
    const double got = merged.Quantile(q);
    EXPECT_GE(got, lo) << "q=" << q << " oracle=" << oracle;
    EXPECT_LE(got, hi) << "q=" << q << " oracle=" << oracle;
  }
}

TEST(LatencyHistogramTest, MeanAndMaxTrackRawSamples) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(20);
  h.Record(90);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.mean_cycles(), 40.0);
  EXPECT_EQ(h.max_cycles(), 90u);
}

}  // namespace
}  // namespace wmlp
