// Stress sweep for the multi-level rounding with the paranoid
// from-scratch consistency checker enabled: every (n, k, ell, beta,
// workload) cell replays the full invariant set (class masses, cached
// counts, feasibility, one-copy) on every request.
#include <gtest/gtest.h>

#include "core/randomized.h"
#include "core/rounding_multilevel.h"
#include "sim/simulator.h"
#include "trace/generators.h"

namespace wmlp {
namespace {

struct ParanoidCase {
  int32_t n, k, ell;
  double beta;  // 0 = default 4 ln(k+1)
  int32_t workload;  // 0 zipf, 1 loop, 2 phases, 3 write-then-read
  uint64_t seed;
};

class ParanoidSweep : public ::testing::TestWithParam<ParanoidCase> {};

Trace MakeWorkload(const ParanoidCase& c) {
  Instance inst(c.n, c.k, c.ell,
                MakeWeights(c.n, c.ell, WeightModel::kGeometricLevels, 8.0,
                            c.seed));
  const LevelMix mix = c.ell == 1 ? LevelMix::AllLowest(1)
                                  : LevelMix::UniformMix(c.ell);
  switch (c.workload) {
    case 0:
      return GenZipf(inst, 800, 0.8, mix, c.seed + 1);
    case 1:
      return GenLoop(inst, 800, std::min(c.n, c.k + 1), mix);
    case 2:
      return GenPhases(inst, 800, std::min(c.n, c.k + 2), 100, 0.7, mix,
                       c.seed + 1);
    default: {
      // First half at level 1 (writes), second half at level ell (reads):
      // maximal demotion traffic.
      Trace t = GenZipf(inst, 800, 0.8, mix, c.seed + 1);
      for (size_t i = 0; i < t.requests.size(); ++i) {
        t.requests[i].level = i < t.requests.size() / 2
                                  ? 1
                                  : inst.num_levels();
      }
      return t;
    }
  }
}

TEST_P(ParanoidSweep, InvariantsHoldEveryStep) {
  const ParanoidCase& c = GetParam();
  const Trace trace = MakeWorkload(c);
  MultiLevelRoundingOptions opts;
  opts.beta = c.beta;
  opts.paranoid = true;
  RoundedMultiLevel policy(MakeFractionalStack(), c.seed + 2, opts);
  const SimResult res = Simulate(trace, policy);
  EXPECT_GT(res.misses, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParanoidSweep,
    ::testing::Values(
        ParanoidCase{8, 2, 2, 0.0, 0, 1}, ParanoidCase{8, 2, 2, 1.0, 0, 2},
        ParanoidCase{16, 4, 2, 1.0, 1, 3},
        ParanoidCase{16, 4, 3, 2.0, 0, 4},
        ParanoidCase{16, 15, 2, 1.0, 1, 5},
        ParanoidCase{24, 6, 4, 0.0, 2, 6},
        ParanoidCase{24, 6, 2, 1.0, 3, 7},
        ParanoidCase{12, 3, 2, 4.0, 3, 8},
        ParanoidCase{32, 8, 2, 1.0, 0, 9},
        ParanoidCase{9, 8, 3, 1.0, 1, 10},
        ParanoidCase{6, 2, 5, 1.0, 0, 11},
        ParanoidCase{6, 5, 2, 0.0, 3, 12}),
    [](const auto& suite_info) {
      // Built by append: gcc 12's -O3 -Werror=restrict misfires on the
      // operator+(const char*, string&&) chain here.
      const ParanoidCase& c = suite_info.param;
      std::string name = "n";
      name += std::to_string(c.n);
      name += "k";
      name += std::to_string(c.k);
      name += "ell";
      name += std::to_string(c.ell);
      name += "b";
      name += std::to_string(static_cast<int>(c.beta * 10));
      name += "w";
      name += std::to_string(c.workload);
      return name;
    });

TEST(ParanoidSingleLevel, WeightedRoundingAgainstLoopChurn) {
  // ell = 1 on the loop at tiny beta: resets fire constantly; the strict
  // simulator plus the reset CHECKs exercise the Lemma 4.10 bookkeeping.
  Instance inst = Instance::Uniform(9, 8);
  const Trace t = GenLoop(inst, 2000, 9, LevelMix::AllLowest(1));
  for (uint64_t seed = 0; seed < 4; ++seed) {
    RandomizedOptions opts;
    opts.beta = 1.0;
    PolicyPtr p = MakeRandomizedPolicy(seed, opts);
    const SimResult res = Simulate(t, *p);
    EXPECT_GT(res.misses, 0);
  }
}

}  // namespace
}  // namespace wmlp
