// libFuzzer target: the prediction-config surface (docs/ARCHITECTURE.md
// §14) — noise-model validation, predictive-combiner options, and the
// registry's "predictive:"/"lruk:" string parsers.
//
// Decodes the input bytes into NoiseOptions / PredictiveOptions whose eta,
// lambda, and alpha come from raw double bit patterns (NaN, infinities,
// denormals, negative zero all reachable) and whose horizon is a raw
// int64, then checks the layered contract:
//
//   1. MakeNoisyPredictor never crashes and returns nullptr exactly when
//      the documented validation rejects (NaN/non-finite/negative eta,
//      kind=none with eta > 0, swap probability > 1, stale epoch > 1e15).
//   2. Accepted noise configs honor the Predictor contract on a primed
//      EwmaPredictor: every sampled prediction is non-NaN and strictly
//      after `now`; answers are bitwise identical on a second identically
//      seeded predictor queried in reverse order (determinism + query-
//      order independence).
//   3. MakePredictivePolicy returns nullptr exactly when lambda is outside
//      [0, 1], alpha outside (0, 1], horizon negative, or the noise
//      options are invalid — and the registry's strict "predictive:k=v"
//      parser agrees with the structured API on every round-tripped
//      config ("%.17g" preserves finite doubles exactly; "nan"/"inf"
//      round-trip through strtod).
//   4. "lruk:k=<v>" accepts exactly k in [1, 16].
//   5. Accepted policies actually serve: two engine runs over the decoded
//      trace are bitwise identical (the determinism contract).
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/request_source.h"
#include "predict/noise.h"
#include "predict/predictive_policy.h"
#include "predict/predictor.h"
#include "registry/policy_registry.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/rng.h"

using namespace wmlp;

namespace {

struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  uint8_t Next() { return pos < size ? data[pos++] : 0; }
  int64_t Next64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | Next();
    return static_cast<int64_t>(v);
  }
  double NextDouble() {
    return std::bit_cast<double>(static_cast<uint64_t>(Next64()));
  }
  bool done() const { return pos >= size; }
};

constexpr int64_t kMaxRequests = 128;

// Mirrors MakeNoisyPredictor's documented reject rules.
bool NoiseMustReject(const predict::NoiseOptions& noise) {
  return std::isnan(noise.eta) || !std::isfinite(noise.eta) ||
         noise.eta < 0.0 ||
         (noise.kind == predict::NoiseKind::kNone && noise.eta > 0.0) ||
         (noise.kind == predict::NoiseKind::kSwap && noise.eta > 1.0) ||
         (noise.kind == predict::NoiseKind::kStale && noise.eta > 1e15);
}

// Mirrors MakePredictivePolicy's documented reject rules.
bool PredictiveMustReject(const predict::PredictiveOptions& options) {
  predict::NoiseOptions noise;
  noise.kind = options.noise;
  noise.eta = options.eta;
  return std::isnan(options.lambda) || !std::isfinite(options.lambda) ||
         options.lambda < 0.0 || options.lambda > 1.0 ||
         std::isnan(options.ewma_alpha) || options.ewma_alpha <= 0.0 ||
         options.ewma_alpha > 1.0 || options.horizon < 0 ||
         NoiseMustReject(noise);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ByteReader in{data, size};

  const auto kind = static_cast<predict::NoiseKind>(in.Next() % 4);
  predict::NoiseOptions noise;
  noise.kind = kind;
  noise.eta = in.NextDouble();
  noise.seed = 1 + static_cast<uint64_t>(in.Next());

  const int32_t n = 1 + static_cast<int32_t>(in.Next() % 24);  // 1..24
  const int32_t k = 1 + static_cast<int32_t>(in.Next() % n);   // 1..n
  const int32_t ell = 1 + static_cast<int32_t>(in.Next() % 3);
  const uint64_t seed = 1 + static_cast<uint64_t>(in.Next());

  Instance inst(n, k, ell,
                MakeWeights(n, ell, WeightModel::kLogUniform, 16.0, seed));

  // --- 1 + 2: noise validation and the Predictor contract ---------------
  {
    std::string error;
    predict::PredictorPtr noisy = predict::MakeNoisyPredictor(
        std::make_unique<predict::EwmaPredictor>(), noise, &error);
    if (NoiseMustReject(noise)) {
      WMLP_CHECK_MSG(noisy == nullptr, "invalid noise options accepted");
      WMLP_CHECK_MSG(!error.empty(), "noise reject without an error message");
    } else {
      WMLP_CHECK_MSG(noisy != nullptr, "valid noise options rejected");
      predict::PredictorPtr twin = predict::MakeNoisyPredictor(
          std::make_unique<predict::EwmaPredictor>(), noise, nullptr);
      noisy->Attach(inst);
      twin->Attach(inst);
      // Prime both bases identically so EWMA gaps exist for some pages.
      for (Time t = 0; t < 16; ++t) {
        const Request r{static_cast<PageId>(t % n), 1};
        noisy->Observe(t, r);
        twin->Observe(t, r);
      }
      std::vector<std::pair<Time, PageId>> queries;
      for (Time now = 15; now < 24; ++now) {
        for (PageId p = 0; p < n; ++p) queries.emplace_back(now, p);
      }
      std::vector<double> first;
      first.reserve(queries.size());
      for (const auto& [now, p] : queries) {
        const double pred = noisy->PredictNext(now, p);
        WMLP_CHECK_MSG(!std::isnan(pred), "noisy prediction is NaN");
        WMLP_CHECK_MSG(pred > static_cast<double>(now),
                       "noisy prediction not after now");
        first.push_back(pred);
      }
      // Reverse order on the twin: per-query hashing promises the schedule
      // is invisible.
      for (size_t j = queries.size(); j-- > 0;) {
        const double pred = twin->PredictNext(queries[j].first,
                                              queries[j].second);
        WMLP_CHECK_MSG(pred == first[j],
                       "noisy prediction varied with query order");
      }
    }
  }

  // --- 3: structured options vs the registry string parser --------------
  predict::PredictiveOptions options;
  options.lambda = in.NextDouble();
  options.ewma_alpha = in.NextDouble();
  options.horizon = in.Next64();
  options.noise = kind;
  options.eta = noise.eta;

  std::string error;
  PolicyPtr direct = predict::MakePredictivePolicy(seed, options, nullptr,
                                                   &error);
  const bool must_reject = PredictiveMustReject(options);
  if (must_reject) {
    WMLP_CHECK_MSG(direct == nullptr, "invalid predictive options accepted");
    WMLP_CHECK_MSG(!error.empty(),
                   "predictive reject without an error message");
  } else {
    WMLP_CHECK_MSG(direct != nullptr, "valid predictive options rejected");
  }

  // Round-trip through the registry string surface. The horizon key is
  // only emitted when its decimal form survives the parser's bounded-
  // integral gate; otherwise the config is rewritten to horizon = 0 and
  // the expectation recomputed against that.
  predict::PredictiveOptions via_string = options;
  std::string spec = "predictive:lambda=" + FormatDouble(options.lambda) +
                     ",alpha=" + FormatDouble(options.ewma_alpha) +
                     ",eta=" + FormatDouble(options.eta) +
                     ",noise=" + predict::NoiseKindName(kind);
  if (options.horizon >= 0 && options.horizon <= 1000000000) {
    spec += ",horizon=" + std::to_string(options.horizon);
  } else {
    via_string.horizon = 0;
  }
  PolicyPtr parsed = MakePolicyByName(spec, seed);
  if (PredictiveMustReject(via_string)) {
    WMLP_CHECK_MSG(parsed == nullptr,
                   "registry accepted an out-of-range predictive spec");
  } else {
    WMLP_CHECK_MSG(parsed != nullptr,
                   "registry rejected a valid predictive spec");
  }

  // --- 4: lruk:k= range gate --------------------------------------------
  {
    const int lruk = static_cast<int>(in.Next() % 24) - 3;  // -3..20
    PolicyPtr lp = MakePolicyByName("lruk:k=" + std::to_string(lruk), seed);
    if (lruk >= 1 && lruk <= 16) {
      WMLP_CHECK_MSG(lp != nullptr, "in-range lruk:k rejected");
    } else {
      WMLP_CHECK_MSG(lp == nullptr, "out-of-range lruk:k accepted");
    }
  }

  if (parsed == nullptr) return 0;

  // --- 5: accepted configs serve deterministically ----------------------
  Trace trace{std::move(inst), {}};
  while (!in.done() && trace.length() < kMaxRequests) {
    Request r;
    r.page = static_cast<PageId>(in.Next() % n);
    r.level = static_cast<Level>(1 + in.Next() % ell);
    trace.requests.push_back(r);
  }

  PolicyPtr rerun = MakePolicyByName(spec, seed);
  SimResult a, b;
  {
    TraceSource source(trace);
    Engine engine(source, *parsed);
    a = engine.Run();
  }
  {
    TraceSource source(trace);
    Engine engine(source, *rerun);
    b = engine.Run();
  }
  WMLP_CHECK_MSG(a.eviction_cost == b.eviction_cost,
                 "predictive policy run is not deterministic");
  WMLP_CHECK_MSG(a.hits == b.hits && a.misses == b.misses &&
                     a.evictions == b.evictions && a.fetches == b.fetches,
                 "predictive policy counters are not deterministic");
  return 0;
}
