// Standalone corpus driver, used when the tree is not configured with
// -DWMLP_LIBFUZZER=ON (e.g. gcc builds, or clang without the fuzzer
// runtime): runs every file named on the command line through
// LLVMFuzzerTestOneInput once. This keeps the fuzz targets buildable,
// deterministic, and smoke-testable with any toolchain; actual coverage-
// guided fuzzing swaps this file for libFuzzer's own main.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s corpus-file...\n", argv[0]);
    return 2;
  }
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++ran;
  }
  std::printf("ok: %d corpus inputs\n", ran);
  return 0;
}
