// libFuzzer target: request-sequence differ over the whole policy registry.
//
// Decodes the input bytes into a small instance plus an arbitrary request
// sequence, then runs *every* registry policy over it under the strict
// engine with the audit-layer invariants (one-copy-per-page, cache-mass
// feasibility, fetch == evict + residual cost convention) re-checked after
// every step — the auditors are called directly, so this holds in every
// build, not just -DWMLP_AUDIT=ON ones. The engine's own cost accounting
// is cross-checked against an independent CostMeter observer; randomized
// policies additionally assert run-to-run determinism for a fixed seed.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/request_source.h"
#include "engine/step_observers.h"
#include "registry/policy_registry.h"
#include "sim/sim_audit.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "util/check.h"

namespace {

using namespace wmlp;

struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  uint8_t Next() { return pos < size ? data[pos++] : 0; }
  bool done() const { return pos >= size; }
};

constexpr int64_t kMaxRequests = 512;

Cost RunOnce(const Trace& trace, const std::string& name, uint64_t seed) {
  const PolicyPtr policy = MakePolicyByName(name, seed);
  WMLP_CHECK_MSG(policy != nullptr, "registry returned null for " + name);
  TraceSource source(trace);
  CostMeter meter;
  EngineOptions options;
  options.observer = &meter;
  Engine engine(source, *policy, options);
  const Instance& inst = trace.instance;
  while (engine.Step()) {
    audit::AuditCacheState(inst, engine.cache());
    audit::AuditCostConvention(inst, engine.cache(),
                               engine.ops().fetch_cost(),
                               engine.ops().eviction_cost());
  }
  const SimResult result = engine.result();
  WMLP_CHECK(result.hits + result.misses == trace.length());
  WMLP_CHECK(std::abs(result.fetch_cost - meter.fetch_cost()) < 1e-9);
  WMLP_CHECK(std::abs(result.eviction_cost - meter.eviction_cost()) < 1e-9);
  WMLP_CHECK(result.fetches == meter.fetches());
  WMLP_CHECK(result.evictions == meter.evictions());
  // Evictions are a subset of fetches, so the convention implies this order.
  WMLP_CHECK(result.eviction_cost <= result.fetch_cost + 1e-9);
  return result.eviction_cost;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ByteReader in{data, size};
  const int32_t n = 2 + static_cast<int32_t>(in.Next() % 9);     // 2..10
  const int32_t k = 1 + static_cast<int32_t>(in.Next() % n);     // 1..n
  const int32_t ell = 1 + static_cast<int32_t>(in.Next() % 3);   // 1..3
  const auto model = static_cast<WeightModel>(in.Next() % 4);
  const double ratio = 1.0 + static_cast<double>(in.Next() % 32);
  const uint64_t seed = 1 + static_cast<uint64_t>(in.Next());

  Trace trace{Instance(n, k, ell, MakeWeights(n, ell, model, ratio, seed)),
              {}};
  while (!in.done() &&
         trace.length() < kMaxRequests) {
    Request r;
    r.page = static_cast<PageId>(in.Next() % n);
    r.level = static_cast<Level>(1 + in.Next() % ell);
    trace.requests.push_back(r);
  }
  if (trace.requests.empty()) return 0;

  for (const std::string& name : KnownPolicyNames()) {
    // Marking is defined for single-level paging only (its Attach asserts
    // ell == 1); every other registry policy accepts any ell.
    if (name == "marking" && ell > 1) continue;
    const Cost first = RunOnce(trace, name, seed);
    // Fixed seed => bit-identical second run (replayability contract).
    const Cost second = RunOnce(trace, name, seed);
    WMLP_CHECK_MSG(first == second,
                   "nondeterministic cost for " + name);
  }
  return 0;
}
