// libFuzzer target: the wmlp_serve config surface and the sharded server.
//
// Decodes the input bytes into a ServeOptions (shards / clients / batch
// taken raw from the bytes, full signed range — negative, zero, and
// overflow values included) plus a small instance and request stream, then
// checks the layered contract:
//
//   1. ValidateServeConfig never crashes, and rejects every out-of-range
//      value (zero/negative/above-ceiling shards, clients, batch; unknown
//      policy) with a nonempty error — the same strictness tool_util's
//      flag parsing applies to the CLI surface.
//   2. Any config it accepts actually serves: ServeTrace completes and its
//      cost/count fields are bitwise identical when the run is repeated
//      with different client counts and batch sizes (the determinism
//      contract in server.h).
//   3. Accepted single-shard configs reproduce the plain Engine run
//      exactly.
//   4. The telemetry run-option surface (--telemetry-out / --trace-out /
//      --stats-interval) validates without crashing on arbitrary paths and
//      bit-pattern intervals, rejecting the documented invalid shapes; and
//      arming the tracer between the two serve runs must not change a
//      single cost/count bit (telemetry observes, never steers).
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/request_source.h"
#include "registry/policy_registry.h"
#include "server/server.h"
#include "server/sharding.h"
#include "telemetry/export.h"
#include "telemetry/trace_span.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/rng.h"

using namespace wmlp;

namespace {

struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  uint8_t Next() { return pos < size ? data[pos++] : 0; }
  int32_t Next32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | Next();
    return static_cast<int32_t>(v);
  }
  int64_t Next64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | Next();
    return static_cast<int64_t>(v);
  }
  bool done() const { return pos >= size; }
};

constexpr int64_t kMaxRequests = 256;

void ExpectSame(const SimResult& a, const SimResult& b, const char* what) {
  WMLP_CHECK_MSG(a.eviction_cost == b.eviction_cost, what);
  WMLP_CHECK_MSG(a.fetch_cost == b.fetch_cost, what);
  WMLP_CHECK_MSG(a.hits == b.hits, what);
  WMLP_CHECK_MSG(a.misses == b.misses, what);
  WMLP_CHECK_MSG(a.evictions == b.evictions, what);
  WMLP_CHECK_MSG(a.fetches == b.fetches, what);
}

// Decodes and cross-checks a TelemetryRunOptions from the byte stream.
// Returns whether the options validated (the caller uses that to decide
// if arming the tracer mid-run is part of this input's schedule).
bool FuzzTelemetryOptions(ByteReader& in) {
  telemetry::TelemetryRunOptions topts;
  const uint8_t shape = in.Next();
  // Paths of 0..7 raw bytes: control characters, quotes, UTF-8 fragments.
  const size_t out_len = in.Next() % 8;
  for (size_t i = 0; i < out_len; ++i) {
    topts.telemetry_out.push_back(static_cast<char>(in.Next()));
  }
  if (shape & 1) {
    topts.trace_out = topts.telemetry_out;  // the same-file reject path
  } else {
    const size_t trace_len = in.Next() % 8;
    for (size_t i = 0; i < trace_len; ++i) {
      topts.trace_out.push_back(static_cast<char>(in.Next()));
    }
  }
  // Interval from a raw bit pattern: hits NaN, infinities, denormals,
  // negatives, and the [0.01, 86400] window edges.
  topts.stats_interval = std::bit_cast<double>(
      static_cast<uint64_t>(in.Next64()));

  const std::string err = telemetry::ValidateTelemetryRunOptions(topts);
  bool has_control = false;
  for (const std::string* p : {&topts.telemetry_out, &topts.trace_out}) {
    for (char ch : *p) {
      if (static_cast<unsigned char>(ch) < 0x20) has_control = true;
    }
  }
  const bool must_reject =
      has_control || !std::isfinite(topts.stats_interval) ||
      topts.stats_interval < 0.0 ||
      (topts.stats_interval != 0.0 &&
       (topts.stats_interval < 0.01 || topts.stats_interval > 86400.0)) ||
      (!topts.telemetry_out.empty() &&
       topts.telemetry_out == topts.trace_out);
  if (must_reject) {
    WMLP_CHECK_MSG(!err.empty(), "invalid telemetry options accepted");
  } else {
    WMLP_CHECK_MSG(err.empty(), "valid telemetry options rejected");
  }
  return err.empty();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ByteReader in{data, size};

  // Policy first: marking constrains ell (its Attach asserts ell == 1).
  const std::vector<std::string> names = KnownPolicyNames();
  const size_t policy_sel = in.Next() % (names.size() + 1);
  const bool unknown_policy = policy_sel == names.size();
  const std::string policy =
      unknown_policy ? "no-such-policy" : names[policy_sel];

  const int32_t n = 1 + static_cast<int32_t>(in.Next() % 48);    // 1..48
  const int32_t k = 1 + static_cast<int32_t>(in.Next() % n);     // 1..n
  const int32_t ell =
      policy == "marking" ? 1 : 1 + static_cast<int32_t>(in.Next() % 3);
  const uint64_t seed = 1 + static_cast<uint64_t>(in.Next());

  ServeOptions options;
  options.policy = policy;
  options.seed = seed;
  // Raw, unclamped: the whole point is to hit the reject paths.
  options.shards = in.Next32();
  options.clients = in.Next32();
  options.batch = in.Next64();

  const bool telemetry_ok = FuzzTelemetryOptions(in);

  Instance inst(n, k, ell,
                MakeWeights(n, ell, WeightModel::kZipfPages, 8.0, seed));

  const std::string error = ValidateServeConfig(inst, options);
  const bool out_of_range =
      options.shards < 1 || options.shards > kMaxShards ||
      options.clients < 1 || options.clients > kMaxClients ||
      options.batch < 1 || options.batch > kMaxBatch || unknown_policy;
  if (out_of_range) {
    WMLP_CHECK_MSG(!error.empty(),
                   "out-of-range serve config accepted silently");
    return 0;
  }
  if (!error.empty()) return 0;  // e.g. k < #nonempty shards: valid reject

  Trace trace{std::move(inst), {}};
  while (!in.done() && trace.length() < kMaxRequests) {
    Request r;
    r.page = static_cast<PageId>(in.Next() % n);
    r.level = static_cast<Level>(1 + in.Next() % ell);
    trace.requests.push_back(r);
  }

  // Execution uses small client counts — determinism says the choice is
  // invisible in the results, and it keeps thread churn per input bounded.
  ServeOptions run = options;
  run.clients = 1 + options.clients % 4;
  run.batch = 1 + options.batch % 128;
  const ServeReport first = ServeTrace(trace, run);
  WMLP_CHECK(first.requests == trace.length());

  // Second run under a different client/batch schedule AND, on inputs
  // whose telemetry options validated, with the tracer armed — the
  // determinism contract promises both knobs are invisible in the results.
  // (In telemetry-OFF builds arming is inert and this degrades to the
  // plain schedule check.)
  const bool arm_tracer = telemetry_ok && (seed & 1) != 0;
  if (arm_tracer) telemetry::Tracer::Arm();
  ServeOptions varied = run;
  varied.clients = 1 + (options.clients + 2) % 7;
  varied.batch = 1 + (options.batch + 31) % 200;
  const ServeReport second = ServeTrace(trace, varied);
  if (arm_tracer) {
    telemetry::Tracer::Disarm();
    telemetry::Tracer::Drain();  // keep per-thread buffers from pooling
  }
  ExpectSame(first.totals, second.totals,
             "serve totals varied with client/batch schedule");
  WMLP_CHECK(first.shards.size() == second.shards.size());
  for (size_t s = 0; s < first.shards.size(); ++s) {
    ExpectSame(first.shards[s].result, second.shards[s].result,
               "per-shard result varied with client/batch schedule");
  }

  if (options.shards == 1) {
    PolicyPtr mono = MakePolicyByName(options.policy, DeriveSeed(seed, 0));
    TraceSource source(trace);
    Engine engine(source, *mono);
    ExpectSame(first.totals, engine.Run(),
               "single-shard serve diverged from the plain engine");
  }
  return 0;
}
