// libFuzzer target for the trace_io v1 text parser.
//
// Contract under fuzzing: any byte string either parses into a Trace whose
// instance satisfies the documented guarantees (finite weights >= 1,
// non-increasing in level, in-range requests) or is rejected with an error
// message — never a crash, hang, or unbounded allocation. Accepted traces
// must survive a serialize -> parse -> serialize round trip byte-for-byte.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "trace/trace_io.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::string error;
  const auto trace = wmlp::TraceFromString(text, &error);
  if (!trace.has_value()) {
    WMLP_CHECK_MSG(!error.empty(), "rejected input without an error message");
    return 0;
  }
  const wmlp::Instance& inst = trace->instance;
  for (wmlp::PageId p = 0; p < inst.num_pages(); ++p) {
    for (wmlp::Level i = 1; i <= inst.num_levels(); ++i) {
      const wmlp::Cost w = inst.weight(p, i);
      WMLP_CHECK_MSG(std::isfinite(w) && w >= 1.0, "bad accepted weight");
      if (i > 1) WMLP_CHECK(w <= inst.weight(p, i - 1));
    }
  }
  for (const wmlp::Request& r : trace->requests) {
    WMLP_CHECK(inst.valid_page(r.page) && inst.valid_level(r.level));
  }
  const std::string once = wmlp::TraceToString(*trace);
  const auto reparsed = wmlp::TraceFromString(once, &error);
  WMLP_CHECK_MSG(reparsed.has_value(), "round trip failed to parse");
  WMLP_CHECK_MSG(wmlp::TraceToString(*reparsed) == once,
                 "round trip not a fixed point");
  return 0;
}
